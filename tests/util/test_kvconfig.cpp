#include "util/kvconfig.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/assert.h"

namespace lad {
namespace {

constexpr const char* kSample = R"(# a comment
; another comment style
[alpha]
name = first
count = 3
ratio = 0.5
flag = true
list = 1, 2, 3

[beta]
empty =
range = 40:160:20
)";

TEST(KvConfig, ParsesSectionsAndTypedValues) {
  const KvConfig cfg = KvConfig::parse_string(kSample);
  ASSERT_EQ(cfg.sections().size(), 2u);
  EXPECT_EQ(cfg.sections()[0].name(), "alpha");
  EXPECT_EQ(cfg.sections()[1].name(), "beta");

  const KvConfig::Section& alpha = cfg.section("alpha");
  EXPECT_EQ(alpha.get_string("name", ""), "first");
  EXPECT_EQ(alpha.get_int("count", 0), 3);
  EXPECT_DOUBLE_EQ(alpha.get_double("ratio", 0.0), 0.5);
  EXPECT_TRUE(alpha.get_bool("flag", false));
  EXPECT_EQ(alpha.get_double_list("list", {}),
            (std::vector<double>{1, 2, 3}));
}

TEST(KvConfig, DefaultsApplyWhenKeysAreMissing) {
  const KvConfig cfg = KvConfig::parse_string(kSample);
  const KvConfig::Section& alpha = cfg.section("alpha");
  EXPECT_EQ(alpha.get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(alpha.get_int("missing", 42), 42);
  EXPECT_FALSE(alpha.get_bool("missing", false));
  EXPECT_EQ(alpha.get_double_list("missing", {7.0}),
            (std::vector<double>{7.0}));
  EXPECT_FALSE(alpha.has("missing"));
  EXPECT_TRUE(alpha.has("name"));
}

TEST(KvConfig, MissingSectionThrowsAndFindReturnsNull) {
  const KvConfig cfg = KvConfig::parse_string(kSample);
  EXPECT_FALSE(cfg.has_section("gamma"));
  EXPECT_EQ(cfg.find_section("gamma"), nullptr);
  EXPECT_THROW(cfg.section("gamma"), AssertionError);
}

TEST(KvConfig, DuplicateSectionIsAnError) {
  EXPECT_THROW(KvConfig::parse_string("[a]\nx = 1\n[b]\ny = 2\n[a]\nz = 3\n"),
               AssertionError);
}

TEST(KvConfig, DuplicateKeyInSectionIsAnError) {
  EXPECT_THROW(KvConfig::parse_string("[a]\nx = 1\nx = 2\n"), AssertionError);
}

TEST(KvConfig, KeyBeforeAnySectionIsAnError) {
  EXPECT_THROW(KvConfig::parse_string("x = 1\n[a]\n"), AssertionError);
}

TEST(KvConfig, MalformedLinesAreErrorsWithLineNumbers) {
  try {
    KvConfig::parse_string("[a]\nnot a key value line\n", "test.scn");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("test.scn:2"), std::string::npos);
  }
  EXPECT_THROW(KvConfig::parse_string("[unterminated\n"), AssertionError);
  EXPECT_THROW(KvConfig::parse_string("[]\n"), AssertionError);
  EXPECT_THROW(KvConfig::parse_string("[a]\n= value\n"), AssertionError);
}

TEST(KvConfig, BadTypedValuesNameTheSectionAndKey) {
  const KvConfig cfg =
      KvConfig::parse_string("[a]\nnum = banana\nflag = maybe\n");
  try {
    cfg.section("a").get_int("num", 0);
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[a] num"), std::string::npos) << what;
  }
  EXPECT_THROW(cfg.section("a").get_double("num", 0.0), AssertionError);
  EXPECT_THROW(cfg.section("a").get_bool("flag", false), AssertionError);
}

TEST(KvConfig, UnusedReportsOnlyUnreadKeys) {
  const KvConfig cfg = KvConfig::parse_string("[a]\nx = 1\ny = 2\n[b]\nz = 3\n");
  cfg.section("a").get_int("x", 0);
  const std::vector<std::string> unused = cfg.unused();
  EXPECT_EQ(unused, (std::vector<std::string>{"a.y", "b.z"}));
  cfg.section("a").get_int("y", 0);
  cfg.section("b").get_int("z", 0);
  EXPECT_TRUE(cfg.unused().empty());
}

TEST(KvConfig, RangeSyntaxExpandsInclusively) {
  const KvConfig cfg = KvConfig::parse_string(kSample);
  EXPECT_EQ(cfg.section("beta").get_double_list("range", {}),
            (std::vector<double>{40, 60, 80, 100, 120, 140, 160}));
  EXPECT_EQ(expand_int_range("1:7:3"), (std::vector<long long>{1, 4, 7}));
  // Endpoint not on the grid: stops below hi.
  EXPECT_EQ(expand_int_range("1:8:3"), (std::vector<long long>{1, 4, 7}));
  EXPECT_EQ(expand_double_range("2.5"), (std::vector<double>{2.5}));
}

TEST(KvConfig, RangesMixWithPlainElements) {
  const KvConfig cfg =
      KvConfig::parse_string("[s]\nd = 10, 40:60:10, 100\n");
  EXPECT_EQ(cfg.section("s").get_double_list("d", {}),
            (std::vector<double>{10, 40, 50, 60, 100}));
}

TEST(KvConfig, BadRangesThrow) {
  EXPECT_THROW(expand_double_range("1:2"), AssertionError);
  EXPECT_THROW(expand_double_range("1:2:3:4"), AssertionError);
  EXPECT_THROW(expand_double_range("5:1:1"), AssertionError);    // lo > hi
  EXPECT_THROW(expand_double_range("1:5:0"), AssertionError);    // step 0
  EXPECT_THROW(expand_double_range("1:5:-1"), AssertionError);   // step < 0
  EXPECT_THROW(expand_double_range("a:b:c"), AssertionError);
}

TEST(KvConfig, AccessorErrorsCarryFileAndLine) {
  const KvConfig cfg = KvConfig::parse_string(
      "[sweep]\n# filler\ndamages = 40:160:0\n", "bad.scn");
  try {
    cfg.section("sweep").get_double_list("damages", {});
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.scn:3"), std::string::npos) << what;
    EXPECT_NE(what.find("[sweep] damages"), std::string::npos) << what;
    EXPECT_NE(what.find("step must be > 0"), std::string::npos) << what;
  }
  const KvConfig cfg2 =
      KvConfig::parse_string("[a]\nnum = banana\n", "typo.scn");
  try {
    cfg2.section("a").get_int("num", 0);
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("typo.scn:2"), std::string::npos)
        << e.what();
  }
}

TEST(KvConfig, ReversedRangeInListAccessorIsNamedError) {
  const KvConfig cfg =
      KvConfig::parse_string("[sweep]\nd = 160:40:20\n", "rev.scn");
  try {
    cfg.section("sweep").get_double_list("d", {});
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rev.scn:2"), std::string::npos) << what;
    EXPECT_NE(what.find("lo must be <= hi"), std::string::npos) << what;
  }
}

TEST(KvConfig, OversizedRangeExpansionIsRejectedNotHung) {
  // A denormal step passes `step > 0` but would expand to ~1e308 values;
  // the size guard must reject it by name instead of looping forever.
  try {
    expand_double_range("0:1:1e-300");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("limit"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(expand_double_range("0:inf:1"), AssertionError);
  EXPECT_THROW(expand_double_range("nan:1:1"), AssertionError);
  EXPECT_THROW(expand_int_range("0:100000000:1"), AssertionError);
  // Just inside the limit still works.
  EXPECT_EQ(expand_int_range("1:1000000:1").size(), 1000000u);
}

TEST(KvConfig, IntRangeNearLimitsDoesNotOverflow) {
  const long long max = std::numeric_limits<long long>::max();
  // `v += step` past LLONG_MAX is UB in the naive loop; the unsigned
  // formulation must produce the exact endpoints and stop.
  const auto vals =
      expand_int_range(std::to_string(max - 2) + ":" + std::to_string(max) +
                       ":2");
  EXPECT_EQ(vals, (std::vector<long long>{max - 2, max}));
  const long long min = std::numeric_limits<long long>::min();
  // Bounds straddling the full 64-bit span: hi - lo overflows long long.
  EXPECT_THROW(expand_int_range(std::to_string(min) + ":" +
                                std::to_string(max) + ":1"),
               AssertionError);
}

TEST(KvConfig, SectionKnowsOriginAndKeyLines) {
  const KvConfig cfg = KvConfig::parse_string(kSample, "sample.scn");
  const KvConfig::Section& beta = cfg.section("beta");
  EXPECT_EQ(beta.origin(), "sample.scn");
  EXPECT_EQ(beta.line_of("range"), 12);
  EXPECT_EQ(beta.line_of("absent"), 0);
}

TEST(KvConfig, RenderListRoundTrips) {
  const std::vector<double> doubles = expand_double_range("0.05:0.25:0.05");
  const KvConfig re = KvConfig::parse_string("[s]\nv = " +
                                             render_list(doubles) + "\n");
  EXPECT_EQ(re.section("s").get_double_list("v", {}), doubles);

  const std::vector<long long> ints = expand_int_range("100:1000:300");
  const KvConfig re2 =
      KvConfig::parse_string("[s]\nv = " + render_list(ints) + "\n");
  EXPECT_EQ(re2.section("s").get_int_list("v", {}), ints);
}

TEST(KvConfig, EmptyValueIsEmptyString) {
  const KvConfig cfg = KvConfig::parse_string(kSample);
  EXPECT_EQ(cfg.section("beta").get_string("empty", "def"), "");
}

TEST(KvConfig, MissingFileThrows) {
  EXPECT_THROW(KvConfig::parse_file("/nonexistent/path.scn"), AssertionError);
}

}  // namespace
}  // namespace lad
