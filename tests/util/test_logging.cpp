#include "util/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lad {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&sink_);
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }
  std::ostringstream sink_;
};

TEST_F(LoggingTest, WritesTaggedMessage) {
  LAD_INFO << "hello " << 42;
  EXPECT_EQ(sink_.str(), "[info] hello 42\n");
}

TEST_F(LoggingTest, RespectsLevelFilter) {
  Logger::instance().set_level(LogLevel::kWarn);
  LAD_DEBUG << "too quiet";
  LAD_INFO << "still too quiet";
  LAD_WARN << "audible";
  EXPECT_EQ(sink_.str(), "[warn] audible\n");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  LAD_ERROR << "nope";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, FilteredLineDoesNotEvaluateArguments) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 7;
  };
  LAD_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(LogLevelName, AllLevelsNamed) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "debug");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "info");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "warn");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "error");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "off");
}

}  // namespace
}  // namespace lad
