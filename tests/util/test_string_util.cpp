#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/assert.h"

namespace lad {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Split, SingleField) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\nz\r "), "z");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsWith, Cases) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), AssertionError);
  EXPECT_THROW(parse_double("1.5x"), AssertionError);
  EXPECT_THROW(parse_double(""), AssertionError);
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
}

TEST(ParseInt, RejectsGarbageAndPartials) {
  EXPECT_THROW(parse_int("4.2"), AssertionError);
  EXPECT_THROW(parse_int("x"), AssertionError);
  EXPECT_THROW(parse_int(""), AssertionError);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

}  // namespace
}  // namespace lad
