#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lad {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, HandlesMoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(0, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<long long> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(0, 10, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, ZeroRequestsDefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, DynamicChunkingSurvivesImbalancedWork) {
  // One pathological item 1000x heavier than the rest: the atomic-cursor
  // grab means the other workers drain the remaining items instead of
  // idling behind a static partition.  Correctness check: every item
  // still runs exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    if (i == 0) {
      volatile double sink = 0;
      for (int k = 0; k < 2000000; ++k) sink = sink + 1.0;
    }
    ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The scenario runner nests loops on the shared pool (jobs -> pipeline
  // passes).  The caller participates in its own loop, so progress is
  // guaranteed even when every worker is parked inside the outer level.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  pool.ensure_workers(2);  // no-op: never shrinks
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SharedPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.ensure_workers(2);
  a.parallel_for(0, 10, [&](std::size_t) { ++count; }, 2);
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, MaxWorkersCapsParticipationNotCoverage) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 2);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace lad
