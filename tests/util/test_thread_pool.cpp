#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lad {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, HandlesMoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(0, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<long long> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(0, 10, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, ZeroRequestsDefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace lad
