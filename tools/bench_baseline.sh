#!/usr/bin/env bash
# Fixed-seed wall-time baseline runner (the ROADMAP "perf baseline" item).
#
# Builds the bench binaries, runs every figure/table scenario in quick
# mode under the default fixed seed, prints a markdown table of
# wall-times to paste into bench/BASELINE.md, and writes the same rows
# as machine-readable lad-bench-1 JSON (BENCH_baseline.json, the schema
# that tools/bench_json_check validates).  Scenario output itself is
# deterministic (same seed => byte-identical CSV), so regressions show
# up as time deltas, never value deltas.
#
# Each bench is timed twice: pinned to LAD_THREADS=1 (comparable across
# hosts) and at a multithread count (default 4; export LAD_BASELINE_MT
# to change it), so the table shows what the shared-pool fan-out buys
# on the measuring host.  Export LAD_THREADS to change the pinned leg.
#
# Portability: works without GNU date (%N) — timing falls back to whole
# seconds — and without nproc (getconf fallback).
#
# usage: tools/bench_baseline.sh [build_dir] [json_out_dir]
#        (defaults: build, current directory)
set -eu

build="${1:-build}"
out_dir="${2:-.}"
repo="$(cd "$(dirname "$0")/.." && pwd)"

# Pin the thread count so wall-times are comparable run-over-run; the
# benches honor LAD_THREADS through lad::default_parallelism().
pinned="${LAD_THREADS:-1}"
mt="${LAD_BASELINE_MT:-4}"

cmake --build "$build" --target benches -j >/dev/null

# Nanosecond timestamps need GNU date; BSD/busybox date prints a literal
# 'N' for %N.  Detect once and fall back to second resolution.
case "$(date +%N 2>/dev/null)" in
  (''|*[!0-9]*) have_ns=0 ;;
  (*)           have_ns=1 ;;
esac
now_ns() {
  if [ "$have_ns" = 1 ]; then date +%s%N; else echo "$(date +%s)000000000"; fi
}

cores="$( (command -v nproc >/dev/null 2>&1 && nproc) \
  || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1 )"
host="$(uname -sr) / ${cores} core(s)"
git_rev="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)"
utc_date="$(date -u +%Y-%m-%d)"

# Every figure/table bench is a thin wrapper over a checked-in spec, so
# the spec directory is the authoritative bench list.
benches=$(cd "$repo/bench/scenarios" && ls *.scn | sed 's/\.scn$//' \
  | grep -v '^quickstart$')
[ -n "$benches" ] || { echo "no specs found in bench/scenarios" >&2; exit 1; }

json="$out_dir/BENCH_baseline.json"
{
  printf '{\n'
  printf '  "schema": "lad-bench-1",\n'
  printf '  "name": "baseline",\n'
  printf '  "threads": %s,\n' "$pinned"
  printf '  "git_rev": "%s",\n' "$git_rev"
  printf '  "host": "%s",\n' "$host"
  printf '  "date": "%s",\n' "$utc_date"
  printf '  "results": [\n'
} >"$json"

# time_bench <binary> <threads> -> elapsed ns on stdout
time_bench() {
  start=$(now_ns)
  LAD_THREADS="$2" "$1" --quick --csv >/dev/null
  end=$(now_ns)
  echo $((end - start))
}

echo "| bench (quick mode, default seed) | LAD_THREADS=$pinned (s) | LAD_THREADS=$mt (s) |"
echo "|---|---|---|"
first=1
for b in $benches; do
  bin="$build/bench/$b"
  [ -x "$bin" ] || { echo "missing binary $bin" >&2; exit 1; }
  ns=$(time_bench "$bin" "$pinned")
  ns_mt=$(time_bench "$bin" "$mt")
  printf "| %s | %s | %s |\n" "$b" \
    "$(awk "BEGIN {printf \"%.2f\", $ns / 1e9}")" \
    "$(awk "BEGIN {printf \"%.2f\", $ns_mt / 1e9}")"
  [ "$first" = 1 ] || printf ',\n' >>"$json"
  first=0
  printf '    {"name": "%s", "nodes": 0, "ns_per_op": %s.0, "ops": 1},\n' \
    "$b" "$ns" >>"$json"
  printf '    {"name": "%s/t%s", "nodes": 0, "ns_per_op": %s.0, "ops": 1}' \
    "$b" "$mt" "$ns_mt" >>"$json"
done
printf '\n  ]\n}\n' >>"$json"

echo
echo "_Measured on: $host, $utc_date (pinned LAD_THREADS=$pinned vs $mt)._"
echo
echo "wrote $json" >&2

# Self-check the emitted JSON when the checker is built (CI always
# builds it; local quick runs may not have it yet).
if [ -x "$build/tools/bench_json_check" ]; then
  "$build/tools/bench_json_check" "$json" >&2
fi
