#!/usr/bin/env bash
# Fixed-seed wall-time baseline runner (the ROADMAP "perf baseline" item).
#
# Builds the bench binaries, runs every figure/table scenario in quick
# mode under the default fixed seed, prints a markdown table of
# wall-times to paste into bench/BASELINE.md, and writes the same rows
# as machine-readable lad-bench-1 JSON (BENCH_baseline.json, the schema
# that tools/bench_json_check validates).  Scenario output itself is
# deterministic (same seed => byte-identical CSV), so regressions show
# up as time deltas, never value deltas.
#
# Runs are pinned to LAD_THREADS=1 by default so numbers are comparable
# across hosts; export LAD_THREADS to pin differently.
#
# Portability: works without GNU date (%N) — timing falls back to whole
# seconds — and without nproc (getconf fallback).
#
# usage: tools/bench_baseline.sh [build_dir] [json_out_dir]
#        (defaults: build, current directory)
set -eu

build="${1:-build}"
out_dir="${2:-.}"
repo="$(cd "$(dirname "$0")/.." && pwd)"

# Pin the thread count so wall-times are comparable run-over-run; the
# benches honor LAD_THREADS through lad::default_parallelism().
LAD_THREADS="${LAD_THREADS:-1}"
export LAD_THREADS

cmake --build "$build" --target benches -j >/dev/null

# Nanosecond timestamps need GNU date; BSD/busybox date prints a literal
# 'N' for %N.  Detect once and fall back to second resolution.
case "$(date +%N 2>/dev/null)" in
  (''|*[!0-9]*) have_ns=0 ;;
  (*)           have_ns=1 ;;
esac
now_ns() {
  if [ "$have_ns" = 1 ]; then date +%s%N; else echo "$(date +%s)000000000"; fi
}

cores="$( (command -v nproc >/dev/null 2>&1 && nproc) \
  || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1 )"
host="$(uname -sr) / ${cores} core(s)"
git_rev="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)"
utc_date="$(date -u +%Y-%m-%d)"

# Every figure/table bench is a thin wrapper over a checked-in spec, so
# the spec directory is the authoritative bench list.
benches=$(cd "$repo/bench/scenarios" && ls *.scn | sed 's/\.scn$//' \
  | grep -v '^quickstart$')
[ -n "$benches" ] || { echo "no specs found in bench/scenarios" >&2; exit 1; }

json="$out_dir/BENCH_baseline.json"
{
  printf '{\n'
  printf '  "schema": "lad-bench-1",\n'
  printf '  "name": "baseline",\n'
  printf '  "threads": %s,\n' "$LAD_THREADS"
  printf '  "git_rev": "%s",\n' "$git_rev"
  printf '  "host": "%s",\n' "$host"
  printf '  "date": "%s",\n' "$utc_date"
  printf '  "results": [\n'
} >"$json"

echo "| bench (quick mode, default seed, LAD_THREADS=$LAD_THREADS) | wall time (s) |"
echo "|---|---|"
first=1
for b in $benches; do
  bin="$build/bench/$b"
  [ -x "$bin" ] || { echo "missing binary $bin" >&2; exit 1; }
  start=$(now_ns)
  "$bin" --quick --csv >/dev/null
  end=$(now_ns)
  ns=$((end - start))
  printf "| %s | %s |\n" "$b" \
    "$(awk "BEGIN {printf \"%.2f\", $ns / 1e9}")"
  [ "$first" = 1 ] || printf ',\n' >>"$json"
  first=0
  printf '    {"name": "%s", "nodes": 0, "ns_per_op": %s.0, "ops": 1}' \
    "$b" "$ns" >>"$json"
done
printf '\n  ]\n}\n' >>"$json"

echo
echo "_Measured on: $host, $utc_date (LAD_THREADS=$LAD_THREADS)._"
echo
echo "wrote $json" >&2

# Self-check the emitted JSON when the checker is built (CI always
# builds it; local quick runs may not have it yet).
if [ -x "$build/tools/bench_json_check" ]; then
  "$build/tools/bench_json_check" "$json" >&2
fi
