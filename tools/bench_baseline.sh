#!/usr/bin/env bash
# Fixed-seed wall-time baseline runner (the ROADMAP "perf baseline" item).
#
# Builds the bench binaries, runs every figure/table scenario in quick
# mode under the default fixed seed, and prints a markdown table of
# wall-times to paste into bench/BASELINE.md.  Scenario output itself is
# deterministic (same seed => byte-identical CSV), so regressions show up
# as time deltas, never value deltas.
#
# usage: tools/bench_baseline.sh [build_dir]   (default: build)
set -eu

build="${1:-build}"
repo="$(cd "$(dirname "$0")/.." && pwd)"

cmake --build "$build" --target benches -j >/dev/null

# Every figure/table bench is a thin wrapper over a checked-in spec, so
# the spec directory is the authoritative bench list.
benches=$(cd "$repo/bench/scenarios" && ls *.scn | sed 's/\.scn$//' \
  | grep -v '^quickstart$')
[ -n "$benches" ] || { echo "no specs found in bench/scenarios" >&2; exit 1; }

host="$(uname -sr) / $(nproc) core(s)"
echo "| bench (quick mode, default seed) | wall time (s) |"
echo "|---|---|"
for b in $benches; do
  bin="$build/bench/$b"
  [ -x "$bin" ] || { echo "missing binary $bin" >&2; exit 1; }
  start=$(date +%s.%N)
  "$bin" --quick --csv >/dev/null
  end=$(date +%s.%N)
  printf "| %s | %.2f |\n" "$b" "$(echo "$end $start" | awk '{print $1 - $2}')"
done
echo
echo "_Measured on: $host, $(date -u +%Y-%m-%d)._"
