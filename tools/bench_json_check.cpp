// Validates BENCH_*.json artifacts against the lad-bench-1 schema
// (util/bench_json.h).  CI runs this over every emitted file so a bench
// that drifts from the schema — or a hand-edited artifact — fails the
// build instead of silently breaking the perf-trajectory tooling.
//
//   usage: bench_json_check <file.json> [more.json ...]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/bench_json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_json_check <file.json> [...]\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "%s: cannot read file\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string error = lad::validate_bench_json(buf.str());
    if (error.empty()) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
