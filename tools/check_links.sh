#!/usr/bin/env bash
# Markdown link checker for README.md and docs/*.md.
#
# Extracts every inline markdown link/image target and verifies that
# local targets exist relative to the file that references them (anchors
# are stripped; http(s)/mailto links are skipped — CI has no network).
# Exits non-zero listing each broken link, so new docs cannot rot
# silently.
#
# usage: tools/check_links.sh [file-or-dir ...]   (default: README.md docs)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

targets=("$@")
[ ${#targets[@]} -gt 0 ] || targets=(README.md docs)

files=$(for t in "${targets[@]}"; do
  if [ -d "$t" ]; then find "$t" -name '*.md' | sort; else echo "$t"; fi
done)
[ -n "$files" ] || { echo "check_links: no markdown files found" >&2; exit 1; }

status=0
checked=0
for f in $files; do
  dir=$(dirname "$f")
  # Inline links: [text](target).  One per line; tolerate several per line.
  links=$(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' || true)
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${link%%#*}"            # strip anchor
    [ -n "$path" ] || continue    # pure in-page anchor
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN $f -> $link"
      status=1
    fi
  done
done

echo "check_links: $checked local links checked in $(echo "$files" | wc -l) files"
exit $status
