#!/usr/bin/env bash
# Markdown link checker for README.md and docs/*.md.
#
# Three gates, so new docs cannot rot silently:
#   1. Inline links/images [text](target): local targets must exist
#      relative to the referencing file (http(s)/mailto skipped — CI
#      has no network).
#   2. Anchors: both in-page (#section) and cross-file (file.md#section)
#      fragments must match a real heading in the target markdown file,
#      using GitHub's slug rules (lowercase, punctuation stripped,
#      spaces to hyphens).
#   3. Wiki-style [[name]] references: must resolve to name, name.md, or
#      docs/name.md relative to the referencing file or the repo root —
#      anything else is a dangling stub.
#
# Exits non-zero listing each broken link.
#
# usage: tools/check_links.sh [file-or-dir ...]   (default: README.md docs)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

targets=("$@")
[ ${#targets[@]} -gt 0 ] || targets=(README.md docs)

files=$(for t in "${targets[@]}"; do
  if [ -d "$t" ]; then find "$t" -name '*.md' | sort; else echo "$t"; fi
done)
[ -n "$files" ] || { echo "check_links: no markdown files found" >&2; exit 1; }

# GitHub heading slug: lowercase; drop everything but alnum, space,
# hyphen, underscore; spaces become hyphens.
slugify() {
  printf '%s' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# All heading slugs of a markdown file, one per line.  ATX headings
# only (the repo uses no Setext headings); inline code/bold markers
# inside the heading are stripped by slugify.
heading_slugs() {
  grep -E '^#{1,6} ' "$1" 2>/dev/null | sed -E 's/^#{1,6} +//' \
    | while IFS= read -r h; do slugify "$h"; printf '\n'; done
}

has_anchor() { # file anchor
  heading_slugs "$1" | grep -qxF "$2"
}

status=0
checked=0
anchors_checked=0
for f in $files; do
  dir=$(dirname "$f")
  # Inline links: [text](target).  One per line; tolerate several per line.
  links=$(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' || true)
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${link%%#*}"            # part before any anchor
    anchor=""
    case "$link" in *'#'*) anchor="${link#*#}" ;; esac
    if [ -n "$path" ]; then
      checked=$((checked + 1))
      if [ ! -e "$dir/$path" ]; then
        echo "BROKEN $f -> $link"
        status=1
        continue
      fi
    fi
    if [ -n "$anchor" ]; then
      target="$f"                 # pure in-page anchor
      [ -z "$path" ] || target="$dir/$path"
      case "$target" in
        *.md)
          anchors_checked=$((anchors_checked + 1))
          if ! has_anchor "$target" "$anchor"; then
            echo "BROKEN-ANCHOR $f -> $link (no heading slugs to '#$anchor' in $target)"
            status=1
          fi
          ;;
      esac
    fi
  done

  # Wiki-style [[name]] references (used by some editors as doc stubs):
  # each must resolve to a real file, else it is a dangling link.
  wikis=$(grep -oE '\[\[[^]]+\]\]' "$f" | sed -e 's/^\[\[//' -e 's/\]\]$//' || true)
  for w in $wikis; do
    checked=$((checked + 1))
    if [ ! -e "$dir/$w" ] && [ ! -e "$dir/$w.md" ] \
        && [ ! -e "docs/$w" ] && [ ! -e "docs/$w.md" ] \
        && [ ! -e "$w" ] && [ ! -e "$w.md" ]; then
      echo "DANGLING $f -> [[$w]]"
      status=1
    fi
  done
done

echo "check_links: $checked local links ($anchors_checked anchors) checked in $(echo "$files" | wc -l) files"
exit $status
