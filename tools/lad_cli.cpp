// lad_cli - command-line front end for the library.
//
//   lad_cli train   --out detector.lad [--metric diff] [--tau 0.99]
//                   [--m 300] [--r 50] [--sigma 50] [--networks 6]
//       Trains a threshold on simulated benign deployments and writes a
//       self-contained detector bundle.
//
//   lad_cli inspect --detector detector.lad
//       Prints a bundle's configuration.
//
//   lad_cli check   --detector detector.lad --le-x <x> --le-y <y>
//                   --obs g0:c0,g1:c1,...
//       Verdict for one (observation, estimated location) pair.
//
//   lad_cli simulate --detector detector.lad [--d 120] [--x 0.1]
//                    [--trials 200] [--attack dec-bounded]
//       Deploys a fresh network, attacks `trials` sensors, and reports the
//       detection rate of the shipped detector (plus benign FP).
//
//   lad_cli run     --scenario file.scn [--shard i/n] [--out dir]
//                   [--quick] [--csv] [--seed S] [--threads N]
//                   [--m M] [--networks N] [--victims K] [--r R] [--sigma S]
//       Runs a declarative scenario (see bench/scenarios/*.scn and the
//       README's "Scenario files" section).  Without --out the result
//       tables print to stdout; with --out each table is written as an
//       item-tagged CSV.  --shard i/n executes only the work items with
//       id % n == i; shard output is placement-independent (Philox-keyed
//       randomness), so merged shards reproduce the unsharded run.
//
//   lad_cli merge   --out dir [--partial] <shard_dir>...
//       Merges shard output directories written by `run --out`: rows are
//       re-ordered by work-item tag, yielding CSVs byte-identical to the
//       unsharded run's.  Overlapping shards and (unless --partial) gaps
//       in the item tags are errors.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/lad.h"
#include "loc/beaconless_mle.h"
#include "sim/pipeline.h"
#include "sim/scenario.h"
#include "stats/quantile.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace lad;

namespace {

int usage() {
  std::cerr << "usage: lad_cli <train|inspect|check|simulate|run|merge> "
               "[--flags]\n"
               "       see the header of tools/lad_cli.cpp for details\n";
  return 2;
}

PipelineConfig pipeline_from_flags(const Flags& flags) {
  PipelineConfig cfg;
  cfg.deploy.nodes_per_group = static_cast<int>(flags.get_int("m", 300));
  cfg.deploy.radio_range = flags.get_double("r", 50.0);
  cfg.deploy.sigma = flags.get_double("sigma", 50.0);
  cfg.networks = static_cast<int>(flags.get_int("networks", 6));
  cfg.victims_per_network = static_cast<int>(flags.get_int("victims", 150));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return cfg;
}

int cmd_train(const Flags& flags) {
  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cerr << "train: --out <file> is required\n";
    return 2;
  }
  const MetricKind metric =
      metric_from_name(flags.get_string("metric", "diff"));
  const double tau = flags.get_double("tau", 0.99);
  const PipelineConfig cfg = pipeline_from_flags(flags);

  Pipeline pipeline(cfg);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  auto benign = pipeline.benign_scores(factory, {metric});
  const TrainingResult trained =
      train_threshold(metric, benign.at(metric), tau);
  std::cout << "trained " << metric_name(metric) << " threshold "
            << trained.threshold << " at tau " << tau << " over "
            << trained.num_samples << " samples (benign mean "
            << trained.score_stats.mean() << ")\n";

  std::ofstream os(out);
  if (!os) {
    std::cerr << "train: cannot open '" << out << "' for writing\n";
    return 1;
  }
  save_bundle(os, make_bundle(pipeline.model(), cfg.gz_omega, metric,
                              trained.threshold));
  std::cout << "wrote " << out << "\n";
  return 0;
}

DetectorBundle load_from_flag(const Flags& flags) {
  const std::string path = flags.get_string("detector", "");
  LAD_REQUIRE_MSG(!path.empty(), "--detector <file> is required");
  std::ifstream is(path);
  LAD_REQUIRE_MSG(static_cast<bool>(is), "cannot open '" << path << "'");
  return load_bundle(is);
}

int cmd_inspect(const Flags& flags) {
  const DetectorBundle b = load_from_flag(flags);
  std::cout << "metric:       " << metric_name(b.metric) << "\n"
            << "threshold:    " << b.threshold << "\n"
            << "field:        " << b.config.field_side << " x "
            << b.config.field_side << " m\n"
            << "groups:       " << b.deployment_points.size() << " (m = "
            << b.config.nodes_per_group << " nodes each)\n"
            << "sigma:        " << b.config.sigma << " m\n"
            << "radio range:  " << b.config.radio_range << " m\n"
            << "g(z) omega:   " << b.gz_omega << "\n";
  return 0;
}

int cmd_check(const Flags& flags) {
  const DetectorBundle bundle = load_from_flag(flags);
  const RuntimeDetector rt(bundle);
  const Vec2 le{flags.get_double("le-x", 0.0), flags.get_double("le-y", 0.0)};
  Observation obs(bundle.deployment_points.size());
  for (const std::string& tok :
       split(flags.get_string("obs", ""), ',')) {
    if (trim(tok).empty()) continue;
    const auto kv = split(tok, ':');
    LAD_REQUIRE_MSG(kv.size() == 2, "bad --obs token '" << tok << "'");
    const long long g = parse_int(kv[0]);
    LAD_REQUIRE_MSG(g >= 0 && g < static_cast<long long>(obs.num_groups()),
                    "group out of range in --obs: " << g);
    obs.counts[static_cast<std::size_t>(g)] =
        static_cast<int>(parse_int(kv[1]));
  }
  const Verdict v = rt.check(obs, le);
  std::cout << "score " << v.score << " vs threshold " << v.threshold
            << " -> " << (v.anomaly ? "ANOMALY" : "ok") << "\n";
  return v.anomaly ? 3 : 0;
}

int cmd_simulate(const Flags& flags) {
  const DetectorBundle bundle = load_from_flag(flags);
  const RuntimeDetector rt(bundle);
  const double d = flags.get_double("d", 120.0);
  const double x = flags.get_double("x", 0.10);
  const int trials = static_cast<int>(flags.get_int("trials", 200));
  LAD_REQUIRE_MSG(trials > 0, "--trials must be positive");
  const AttackClass cls =
      attack_class_from_name(flags.get_string("attack", "dec-bounded"));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  const GzTable gz({bundle.config.radio_range, bundle.config.sigma},
                   bundle.gz_omega);
  Rng rng(seed);
  const Network net(rt.model(), rng);
  const BeaconlessMleLocalizer localizer(rt.model(), gz);

  int benign_alarms = 0, detected = 0;
  for (int t = 0; t < trials; ++t) {
    std::size_t node;
    do {
      node = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    } while (!bundle.config.field().contains(net.position(node)));
    const Observation a = net.observe(node);
    // Benign check.
    if (rt.check(a, localizer.estimate(a)).anomaly) ++benign_alarms;
    // Attacked check.
    const Vec2 la = net.position(node);
    const Vec2 le = displaced_location(la, d, bundle.config.field(), rng);
    const ExpectedObservation mu = rt.model().expected_observation(le, gz);
    const TaintResult taint =
        greedy_taint(a, mu, bundle.config.nodes_per_group, bundle.metric, cls,
                     static_cast<int>(x * a.total()));
    if (rt.check(taint.tainted, le).anomaly) ++detected;
  }
  std::cout << "benign false positives: " << benign_alarms << "/" << trials
            << " (" << format_double(100.0 * benign_alarms / trials, 2)
            << "%)\n";
  std::cout << "attacks detected (D=" << d << ", x=" << x * 100
            << "%, " << attack_class_name(cls) << "): " << detected << "/"
            << trials << " ("
            << format_double(100.0 * detected / trials, 2) << "%)\n";
  return 0;
}

/// Rejects typo'd flags for the scenario subcommands: a silently dropped
/// --shard misspelling would run ALL work items and poison a later merge
/// with duplicate rows.
int reject_unknown_flags(const Flags& flags, const char* cmd) {
  const std::vector<std::string> unknown = flags.unused();
  if (!unknown.empty()) {
    std::cerr << cmd << ": unknown flag(s): --" << join(unknown, ", --")
              << "\n";
    return 2;
  }
  return 0;
}

int cmd_run(const Flags& flags) {
  const std::string scn = flags.get_string("scenario", "");
  if (scn.empty()) {
    std::cerr << "run: --scenario <file.scn> is required\n";
    return 2;
  }

  ShardRange shard;
  if (flags.has("shard")) {
    try {
      shard = parse_shard(flags.get_string("shard", "0/1"));
    } catch (const AssertionError& e) {
      std::cerr << "run: invalid --shard: " << e.what() << "\n"
                << "run: expected --shard i/n with 0 <= i < n, e.g. 0/4\n";
      return 2;
    }
  }

  const ScenarioOverrides overrides = overrides_from_flags(flags);
  const std::string out = flags.get_string("out", "");
  const bool csv = flags.get_bool("csv", false);
  if (!flags.positional().empty()) {
    std::cerr << "run: unexpected argument(s): "
              << join(flags.positional(), " ") << "\n";
    return 2;
  }
  if (const int rc = reject_unknown_flags(flags, "run")) return rc;

  const ScenarioSpec spec = apply_overrides(ScenarioSpec::load(scn), overrides);
  ScenarioRunner runner(spec);
  const long long total = runner.num_items();
  const long long mine =
      (total - shard.index + shard.count - 1) / shard.count;
  std::cerr << "scenario '" << spec.name << "' ("
            << experiment_kind_name(spec.kind) << "): running " << mine
            << " of " << total << " work items (shard " << shard.index << "/"
            << shard.count << ")\n";

  const ScenarioResult result = runner.run(shard);
  if (!out.empty()) {
    const std::vector<std::string> paths = write_result_csvs(result, out);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::cout << "wrote " << paths[i] << " ("
                << result.tables[i].table.num_rows() << " rows)\n";
    }
    return 0;
  }
  std::cout << spec.title << "\n";
  for (const ResultTable& t : result.tables) {
    std::cout << "\n== " << t.id << " ==\n";
    if (csv) {
      t.table.print_csv(std::cout);
    } else {
      t.table.print(std::cout);
    }
  }
  if (!spec.note.empty()) std::cout << "\n" << spec.note << "\n";
  return 0;
}

int cmd_merge(const Flags& flags) {
  const std::string out = flags.get_string("out", "");
  std::vector<std::string> shard_dirs = flags.positional();
  bool partial = false;
  if (flags.has("partial")) {
    // flags.h's "--name value" form means a bare --partial swallows the
    // following shard dir; an existing directory wins over a boolean
    // reading (a shard dir named "1" or "true" is still a dir).  Dir
    // order never changes the merged output (items are disjoint across
    // shards), so recovering it at the front is safe.
    partial = true;
    const std::string v = flags.get_string("partial", "true");
    if (std::filesystem::is_directory(v)) {
      shard_dirs.insert(shard_dirs.begin(), v);
    } else {
      try {
        partial = flags.get_bool("partial", true);  // --partial=false works
      } catch (const AssertionError&) {
        // Neither a directory nor a boolean: let merge report it missing.
        shard_dirs.insert(shard_dirs.begin(), v);
      }
    }
  }
  if (out.empty() || shard_dirs.empty()) {
    std::cerr << "usage: lad_cli merge --out <dir> [--partial] "
                 "<shard_dir>...\n";
    return 2;
  }
  if (const int rc = reject_unknown_flags(flags, "merge")) return rc;
  merge_result_csvs(shard_dirs, out, /*require_complete=*/!partial);
  std::cout << "merged " << shard_dirs.size() << " shard dir(s) into " << out
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  try {
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "inspect") return cmd_inspect(flags);
    if (cmd == "check") return cmd_check(flags);
    if (cmd == "simulate") return cmd_simulate(flags);
    if (cmd == "run") return cmd_run(flags);
    if (cmd == "merge") return cmd_merge(flags);
    return usage();
  } catch (const AssertionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
