// lad_cli - command-line front end for the library.
//
//   lad_cli train   --out detector.lad [--metric diff | --fusion]
//                   [--tau 0.99] [--taus 0.95,0.99,0.999]
//                   [--per-group] [--min-group-samples 100]
//                   [--m 300] [--r 50] [--sigma 50] [--networks 6]
//                   [--threads N]
//       Trains threshold(s) on simulated benign deployments and writes a
//       self-contained v2 detector bundle.  --fusion trains all three
//       metrics on one shared benign pass (the bundle materializes as a
//       FusionDetector); --taus records a multi-tau threshold table, with
//       --tau selecting the active operating point.  --per-group
//       additionally fits every boundary group's threshold on its own
//       benign bucket (min-samples floor falls back to the global value)
//       and records the per-group rows in every section.
//
//   lad_cli inspect --detector detector.lad
//       Prints a bundle's configuration and full per-section provenance
//       (tau table, per-group overrides, extension keys).
//
//   lad_cli check   --detector detector.lad --le-x <x> --le-y <y>
//                   --obs g0:c0,g1:c1,... [--group g]
//       Verdict for one (observation, estimated location) pair; --group
//       applies the bundle's per-group threshold override for that group.
//       A group id outside the bundle's deployment groups is a named
//       error, never a silent fall-through to the global threshold.
//
//   lad_cli simulate --detector detector.lad [--d 120] [--x 0.1]
//                    [--trials 200] [--attack dec-bounded]
//                    [--target diff] [--per-group] [--threads N]
//       Deploys a fresh network, attacks `trials` sensors, and reports the
//       detection rate of the shipped detector (plus benign FP).  The
//       attacker's taint optimizes against --target (default: the bundle's
//       first metric) - the interesting case for fused bundles.
//       --per-group routes every verdict through the bundle's per-group
//       threshold override for the victim's home group.
//
//   lad_cli upgrade --in old.lad --out new.lad
//       Rewrites a bundle in the current (v2) format; v1 inputs are
//       migrated, v2 inputs re-emitted canonically.
//
//   lad_cli run     --scenario file.scn [--shard i/n] [--out dir]
//                   [--resume] [--quick] [--csv] [--seed S] [--threads N]
//                   [--jobs J] [--m M] [--networks N] [--victims K]
//                   [--r R] [--sigma S]
//       Runs a declarative scenario (see bench/scenarios/*.scn and the
//       README's "Scenario files" section).  Without --out the result
//       tables print to stdout; with --out each table is written as an
//       item-tagged CSV.  --shard i/n executes only the work items with
//       id % n == i; shard output is placement-independent (Philox-keyed
//       randomness), so merged shards reproduce the unsharded run.
//       --jobs J runs up to J work items concurrently (on top of the
//       per-pass --threads fan-out); rows are buffered per item and
//       emitted in item order, so the CSVs stay byte-identical.
//       --resume skips the run when the output in --out is complete:
//       every table CSV present and their item tags covering exactly the
//       work items this shard owns (a header-only CSV from a run killed
//       after the header write is incomplete and re-runs).  Rerun a
//       killed shard fleet with --resume and only the dead shards
//       recompute.
//
//   lad_cli merge   --out dir [--partial] <shard_dir>...
//       Merges shard output directories written by `run --out`: rows are
//       re-ordered by work-item tag, yielding CSVs byte-identical to the
//       unsharded run's.  Overlapping shards and (unless --partial) gaps
//       in the item tags are errors.
//
//   lad_cli fuzz-scn [--seed S] [--iters N] [--mode valid|invalid|both]
//                    [--minimize] [--out dir]
//       Property-fuzzes the .scn surface (see sim/scenario_fuzz.h).
//       valid mode generates random-but-valid specs and requires the
//       parser and the runner's item accounting to accept every one;
//       invalid mode injects one named invalid edit per iteration and
//       requires a named AssertionError mentioning the injected token.
//       Exit 0 when every iteration behaves; exit 1 with the offending
//       spec (and, with --minimize, a greedily shrunk reproducer) written
//       under --out (default fuzz_failures/) otherwise.  Failures
//       reproduce from (--seed, iteration) alone.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "attack/adversary.h"
#include "attack/displacement.h"
#include "attack/greedy.h"
#include "core/lad.h"
#include "geom/vec2.h"
#include "loc/beaconless_mle.h"
#include "rng/rng.h"
#include "sim/parallel.h"
#include "sim/pipeline.h"
#include "sim/scenario.h"
#include "sim/scenario_fuzz.h"
#include "util/assert.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace lad;

namespace {

int usage() {
  std::cerr << "usage: lad_cli <train|inspect|check|simulate|upgrade|run|"
               "merge|fuzz-scn> [--flags]\n"
               "       see the header of tools/lad_cli.cpp for details\n";
  return 2;
}

PipelineConfig pipeline_from_flags(const Flags& flags) {
  PipelineConfig cfg;
  cfg.deploy.nodes_per_group = static_cast<int>(flags.get_int("m", 300));
  cfg.deploy.radio_range = flags.get_double("r", 50.0);
  cfg.deploy.sigma = flags.get_double("sigma", 50.0);
  cfg.networks = static_cast<int>(flags.get_int("networks", 6));
  cfg.victims_per_network = static_cast<int>(flags.get_int("victims", 150));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // 0 = default parallelism; negative values are rejected by name inside
  // parallel_for_items, and the trained bundle is bit-identical at every
  // thread count (the pipeline's determinism contract).
  cfg.threads = static_cast<int>(flags.get_int("threads", 0));
  return cfg;
}

int cmd_train(const Flags& flags) {
  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cerr << "train: --out <file> is required\n";
    return 2;
  }
  const bool fusion = flags.get_bool("fusion", false);
  if (fusion && flags.has("metric")) {
    std::cerr << "train: --fusion trains all three metrics; drop --metric\n";
    return 2;
  }
  const std::vector<MetricKind> metrics =
      fusion ? std::vector<MetricKind>{MetricKind::kDiff, MetricKind::kAddAll,
                                       MetricKind::kProb}
             : std::vector<MetricKind>{
                   metric_from_name(flags.get_string("metric", "diff"))};
  const double tau = flags.get_double("tau", 0.99);
  const std::vector<double> taus = flags.get_double_list("taus", {});
  GroupTrainingSpec grouped;
  grouped.per_group = flags.get_bool("per-group", false);
  grouped.min_samples =
      static_cast<int>(flags.get_int("min-group-samples", 100));
  if (!grouped.per_group && flags.has("min-group-samples")) {
    std::cerr << "train: --min-group-samples needs --per-group\n";
    return 2;
  }
  const PipelineConfig cfg = pipeline_from_flags(flags);

  Pipeline pipeline(cfg);
  const LocalizerFactory factory =
      beaconless_mle_factory(pipeline.model(), pipeline.gz());
  const DetectorBundle bundle =
      pipeline.train_bundle(factory, metrics, taus, tau, grouped);
  for (const DetectorSpec& spec : bundle.detectors) {
    std::cout << "trained " << metric_name(spec.metric) << " threshold "
              << spec.threshold << " at tau " << tau;
    for (const ThresholdEntry& e : spec.taus) {
      if (e.tau == tau) {
        std::cout << " over " << e.samples << " samples (benign mean "
                  << e.score_mean << ")";
      }
    }
    std::cout << "\n";
    if (grouped.per_group) {
      std::size_t trained = 0, fallback = 0;
      for (const GroupThreshold& g : spec.group_overrides) {
        (g.source == GroupOverrideSource::kFallback ? fallback : trained)++;
      }
      std::cout << "  per-group: " << trained << " boundary group(s) "
                << "trained, " << fallback << " below the "
                << grouped.min_samples << "-sample floor (global fallback)\n";
    }
  }

  std::ofstream os(out);
  if (!os) {
    std::cerr << "train: cannot open '" << out << "' for writing\n";
    return 1;
  }
  save_bundle(os, bundle);
  os.flush();
  if (!os) {
    std::cerr << "train: failed writing '" << out << "'\n";
    return 1;
  }
  std::cout << "wrote " << out << "\n";
  return 0;
}

DetectorBundle load_from_flag(const Flags& flags, int* version = nullptr) {
  const std::string path = flags.get_string("detector", "");
  LAD_REQUIRE_MSG(!path.empty(), "--detector <file> is required");
  return load_bundle_file(path, version);
}

int cmd_inspect(const Flags& flags) {
  int version = 0;
  const DetectorBundle b = load_from_flag(flags, &version);
  std::cout << "format:       lad-detector v" << version
            << (version == 1 ? " (migrates to v2 in memory)" : "") << "\n"
            << "field:        " << b.config.field_side << " x "
            << b.config.field_side << " m\n"
            << "groups:       " << b.deployment_points.size() << " (m = "
            << b.config.nodes_per_group << " nodes each)\n"
            << "sigma:        " << b.config.sigma << " m\n"
            << "radio range:  " << b.config.radio_range << " m\n"
            << "g(z) omega:   " << b.gz_omega << "\n"
            << "detectors:    " << b.detectors.size()
            << (b.fused() ? " (fusion: alarm when any metric alarms)" : "")
            << "\n";
  for (const DetectorSpec& spec : b.detectors) {
    std::cout << "[detector." << metric_name(spec.metric) << "]\n"
              << "  metric:       " << metric_name(spec.metric) << "\n"
              << "  threshold:    " << spec.threshold << "\n";
    for (const ThresholdEntry& e : spec.taus) {
      std::cout << "  tau " << e.tau << " -> threshold " << e.threshold
                << " (" << e.samples << " samples, score mean "
                << e.score_mean << ", stddev " << e.score_stddev
                << ", range [" << e.score_min << ", " << e.score_max
                << "])\n";
    }
    for (const GroupThreshold& g : spec.group_overrides) {
      std::cout << "  group " << g.group << " -> threshold " << g.threshold;
      if (g.source != GroupOverrideSource::kManual) {
        std::cout << " (" << group_override_source_name(g.source) << ", "
                  << g.samples << " samples, score mean " << g.score_mean
                  << ", stddev " << g.score_stddev << ")";
      }
      std::cout << "\n";
    }
    for (const auto& [key, value] : spec.extensions) {
      std::cout << "  x-" << key << " " << value << "\n";
    }
  }
  return 0;
}

int cmd_upgrade(const Flags& flags) {
  const std::string in = flags.get_string("in", "");
  const std::string out = flags.get_string("out", "");
  if (in.empty() || out.empty()) {
    std::cerr << "usage: lad_cli upgrade --in <old.lad> --out <new.lad>\n";
    return 2;
  }
  int version = 0;
  const DetectorBundle b = load_bundle_file(in, &version);
  std::ofstream os(out);
  if (!os) {
    std::cerr << "upgrade: cannot open '" << out << "' for writing\n";
    return 1;
  }
  save_bundle(os, b);
  os.flush();
  if (!os) {
    std::cerr << "upgrade: failed writing '" << out << "'\n";
    return 1;
  }
  std::cout << (version == 1 ? "upgraded v1 -> v2: "
                             : "rewrote v2 canonically: ")
            << in << " -> " << out << "\n";
  return 0;
}

int cmd_check(const Flags& flags) {
  const DetectorBundle bundle = load_from_flag(flags);
  const RuntimeDetector rt(bundle);
  const Vec2 le{flags.get_double("le-x", 0.0), flags.get_double("le-y", 0.0)};
  Observation obs(bundle.deployment_points.size());
  for (const std::string& tok :
       split(flags.get_string("obs", ""), ',')) {
    if (trim(tok).empty()) continue;
    const auto kv = split(tok, ':');
    LAD_REQUIRE_MSG(kv.size() == 2, "bad --obs token '" << tok << "'");
    const long long g = parse_int(kv[0]);
    LAD_REQUIRE_MSG(g >= 0 && g < static_cast<long long>(obs.num_groups()),
                    "group out of range in --obs: " << g);
    obs.counts[static_cast<std::size_t>(g)] =
        static_cast<int>(parse_int(kv[1]));
  }
  Verdict v;
  if (flags.has("group")) {
    // Validate before the int cast: a group id past the bundle's last
    // deployment group (or a wrap-around-sized one) must be a named
    // error, not a silent fall-through to the global threshold.
    const long long group = flags.get_int("group", 0);
    LAD_REQUIRE_MSG(
        group >= 0 &&
            group < static_cast<long long>(bundle.deployment_points.size()),
        "check: unknown group " << group << ": bundle has groups [0, "
                                << bundle.deployment_points.size() << ")");
    v = rt.check_for_group(obs, le, static_cast<int>(group));
  } else {
    v = rt.check(obs, le);
  }
  std::cout << "detector: " << rt.detector().describe() << "\n";
  std::cout << "score " << v.score << " vs threshold " << v.threshold
            << " -> " << (v.anomaly ? "ANOMALY" : "ok") << "\n";
  return v.anomaly ? 3 : 0;
}

int cmd_simulate(const Flags& flags) {
  const DetectorBundle bundle = load_from_flag(flags);
  const RuntimeDetector rt(bundle);
  const double d = flags.get_double("d", 120.0);
  const double x = flags.get_double("x", 0.10);
  const int trials = static_cast<int>(flags.get_int("trials", 200));
  LAD_REQUIRE_MSG(trials > 0, "--trials must be positive");
  const AttackClass cls =
      attack_class_from_name(flags.get_string("attack", "dec-bounded"));
  // The taint optimizes against one metric (it must commit); a fused
  // bundle is exactly the defense against that commitment.
  const MetricKind target =
      flags.has("target")
          ? metric_from_name(flags.get_string("target", "diff"))
          : bundle.primary().metric;
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  // Route verdicts through the bundle's per-group threshold overrides for
  // each victim's home group - what a sensor that knows its own group id
  // would run.
  const bool per_group = flags.get_bool("per-group", false);

  const int threads = static_cast<int>(flags.get_int("threads", 0));

  const GzTable gz({bundle.config.radio_range, bundle.config.sigma},
                   bundle.gz_omega);
  Rng rng(seed);
  const Network net(rt.model(), rng);
  const BeaconlessMleLocalizer localizer(rt.model(), gz);

  // Sequential rng phase first (the historical per-trial draw order:
  // victim rejection draws, then the planted Le), so the verdict fan-out
  // below is free to run in any schedule without perturbing a single
  // draw - counts are identical at every --threads value.
  std::vector<std::size_t> nodes(static_cast<std::size_t>(trials));
  std::vector<Vec2> les(nodes.size());
  for (std::size_t t = 0; t < nodes.size(); ++t) {
    std::size_t node;
    do {
      node = static_cast<std::size_t>(rng.uniform_int(net.num_nodes()));
    } while (!bundle.config.field().contains(net.position(node)));
    nodes[t] = node;
    les[t] = displaced_location(net.position(node), d, bundle.config.field(),
                                rng);
  }

  // Parallel trial fan-out into per-trial verdict slots; the reduction
  // below is a schedule-independent count.
  std::vector<char> benign_hit(nodes.size(), 0);
  std::vector<char> attack_hit(nodes.size(), 0);
  parallel_for_items(
      nodes.size(),
      [&](std::size_t t) {
        const std::size_t node = nodes[t];
        const Observation a = net.observe(node);
        const int home_group = net.group_of(node);
        const auto verdict = [&](const Observation& obs, Vec2 at) {
          return per_group ? rt.check_for_group(obs, at, home_group)
                           : rt.check(obs, at);
        };
        // Benign check.
        if (verdict(a, localizer.estimate(a)).anomaly) benign_hit[t] = 1;
        // Attacked check.
        const ExpectedObservation mu =
            rt.model().expected_observation(les[t], gz);
        const TaintResult taint =
            greedy_taint(a, mu, bundle.config.nodes_per_group, target, cls,
                         static_cast<int>(x * a.total()));
        if (verdict(taint.tainted, les[t]).anomaly) attack_hit[t] = 1;
      },
      threads);
  int benign_alarms = 0, detected = 0;
  for (std::size_t t = 0; t < nodes.size(); ++t) {
    benign_alarms += benign_hit[t];
    detected += attack_hit[t];
  }
  std::cout << "detector: " << rt.detector().describe()
            << (per_group ? " (per-group thresholds)" : "") << "\n";
  std::cout << "benign false positives: " << benign_alarms << "/" << trials
            << " (" << format_double(100.0 * benign_alarms / trials, 2)
            << "%)\n";
  std::cout << "attacks detected (D=" << d << ", x=" << x * 100
            << "%, " << attack_class_name(cls) << " vs "
            << metric_name(target) << "): " << detected << "/"
            << trials << " ("
            << format_double(100.0 * detected / trials, 2) << "%)\n";
  return 0;
}

/// Rejects typo'd flags for the scenario subcommands: a silently dropped
/// --shard misspelling would run ALL work items and poison a later merge
/// with duplicate rows.
int reject_unknown_flags(const Flags& flags, const char* cmd) {
  const std::vector<std::string> unknown = flags.unused();
  if (!unknown.empty()) {
    std::cerr << cmd << ": unknown flag(s): --" << join(unknown, ", --")
              << "\n";
    return 2;
  }
  return 0;
}

int cmd_run(const Flags& flags) {
  const std::string scn = flags.get_string("scenario", "");
  if (scn.empty()) {
    std::cerr << "run: --scenario <file.scn> is required\n";
    return 2;
  }

  ShardRange shard;
  if (flags.has("shard")) {
    try {
      shard = parse_shard(flags.get_string("shard", "0/1"));
    } catch (const AssertionError& e) {
      std::cerr << "run: invalid --shard: " << e.what() << "\n"
                << "run: expected --shard i/n with 0 <= i < n, e.g. 0/4\n";
      return 2;
    }
  }

  const ScenarioOverrides overrides = overrides_from_flags(flags);
  const std::string out = flags.get_string("out", "");
  const bool csv = flags.get_bool("csv", false);
  const bool resume = flags.get_bool("resume", false);
  if (resume && out.empty()) {
    std::cerr << "run: --resume requires --out (it skips completed CSVs)\n";
    return 2;
  }
  if (!flags.positional().empty()) {
    std::cerr << "run: unexpected argument(s): "
              << join(flags.positional(), " ") << "\n";
    return 2;
  }
  if (const int rc = reject_unknown_flags(flags, "run")) return rc;

  const ScenarioSpec spec = apply_overrides(ScenarioSpec::load(scn), overrides);
  ScenarioRunner runner(spec);
  if (resume) {
    // CSVs are written atomically (tmp + rename), but presence alone is
    // not completeness: a run killed between the header write and the
    // first row leaves a header-only CSV behind.  Completeness means every
    // table CSV exists AND the item tags in them cover exactly the work
    // items this shard owns.
    std::string reason;
    if (runner.output_complete(out, shard, &reason)) {
      std::cerr << "resume: output of '" << spec.name << "' in " << out
                << " is complete; skipping\n";
      return 0;
    }
    std::cerr << "resume: " << reason << "; re-running\n";
  }
  const long long total = runner.num_items();
  const long long mine =
      (total - shard.index + shard.count - 1) / shard.count;
  if (mine <= 0) {
    // An empty slice of the cartesian product silently "succeeding" hides
    // a misconfigured fleet (more shards than work items) or a spec that
    // expands to nothing; fail loudly instead of exiting 0 with no output.
    std::cerr << "run: no work items: scenario '" << spec.name
              << "' expands to " << total << " work item(s) and shard "
              << shard.index << "/" << shard.count
              << " owns none of them\n";
    return 2;
  }
  std::cerr << "scenario '" << spec.name << "' ("
            << experiment_kind_name(spec.kind) << "): running " << mine
            << " of " << total << " work items (shard " << shard.index << "/"
            << shard.count << ")\n";

  const ScenarioResult result = runner.run(shard);
  if (!out.empty()) {
    const std::vector<std::string> paths = write_result_csvs(result, out);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::cout << "wrote " << paths[i] << " ("
                << result.tables[i].table.num_rows() << " rows)\n";
    }
    return 0;
  }
  std::cout << spec.title << "\n";
  for (const ResultTable& t : result.tables) {
    std::cout << "\n== " << t.id << " ==\n";
    if (csv) {
      t.table.print_csv(std::cout);
    } else {
      t.table.print(std::cout);
    }
  }
  if (!spec.note.empty()) std::cout << "\n" << spec.note << "\n";
  return 0;
}

int cmd_merge(const Flags& flags) {
  const std::string out = flags.get_string("out", "");
  std::vector<std::string> shard_dirs = flags.positional();
  bool partial = false;
  if (flags.has("partial")) {
    // flags.h's "--name value" form means a bare --partial swallows the
    // following shard dir; an existing directory wins over a boolean
    // reading (a shard dir named "1" or "true" is still a dir).  Dir
    // order never changes the merged output (items are disjoint across
    // shards), so recovering it at the front is safe.
    partial = true;
    const std::string v = flags.get_string("partial", "true");
    if (std::filesystem::is_directory(v)) {
      shard_dirs.insert(shard_dirs.begin(), v);
    } else {
      try {
        partial = flags.get_bool("partial", true);  // --partial=false works
      } catch (const AssertionError&) {
        // Neither a directory nor a boolean: let merge report it missing.
        shard_dirs.insert(shard_dirs.begin(), v);
      }
    }
  }
  if (out.empty() || shard_dirs.empty()) {
    std::cerr << "usage: lad_cli merge --out <dir> [--partial] "
                 "<shard_dir>...\n";
    return 2;
  }
  if (const int rc = reject_unknown_flags(flags, "merge")) return rc;
  merge_result_csvs(shard_dirs, out, /*require_complete=*/!partial);
  std::cout << "merged " << shard_dirs.size() << " shard dir(s) into " << out
            << "\n";
  return 0;
}

int run_fuzz_mode(const FuzzOptions& options, const std::string& out_dir) {
  const char* mode = options.invalid ? "invalid" : "valid";
  const FuzzReport report = fuzz_scn(options);
  std::cout << "fuzz-scn " << mode << ": " << report.iterations
            << " iteration(s), " << report.failures.size()
            << " failure(s)";
  if (options.invalid) {
    std::cout << ", " << report.classes_seen.size()
              << " mutation class(es) exercised";
  }
  std::cout << "\n";
  if (options.invalid &&
      report.classes_seen.size() < scn_mutation_classes().size()) {
    // Too few iterations to round-robin every class is itself a
    // configuration error: the run would prove less than it claims.
    std::cerr << "fuzz-scn: only " << report.classes_seen.size() << " of "
              << scn_mutation_classes().size()
              << " mutation classes exercised; raise --iters\n";
    return 1;
  }
  if (report.ok()) return 0;

  namespace fs = std::filesystem;
  fs::create_directories(out_dir);
  for (const FuzzFailure& f : report.failures) {
    const std::string base = out_dir + "/" + mode + "_" +
                             std::to_string(f.iteration);
    std::cerr << "FAIL [" << mode << " iter " << f.iteration
              << (f.klass.empty() ? "" : " " + f.klass) << "] " << f.message
              << "\n";
    std::ofstream(base + ".scn") << f.spec;
    std::cerr << "  offending spec: " << base << ".scn\n";
    if (!f.minimized.empty()) {
      std::ofstream(base + ".min.scn") << f.minimized;
      std::cerr << "  minimized reproducer: " << base << ".min.scn\n";
    }
  }
  std::cerr << "fuzz-scn: reproduce any failure with --seed "
            << options.seed << " (iteration index selects the stream)\n";
  return 1;
}

int cmd_fuzz_scn(const Flags& flags) {
  FuzzOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.iters = flags.get_int("iters", 200);
  LAD_REQUIRE_MSG(options.iters > 0, "--iters must be positive");
  options.minimize = flags.get_bool("minimize", false);
  const std::string mode = flags.get_string("mode", "both");
  LAD_REQUIRE_MSG(mode == "valid" || mode == "invalid" || mode == "both",
                  "--mode must be valid, invalid, or both, got '" << mode
                                                                  << "'");
  const std::string out_dir = flags.get_string("out", "fuzz_failures");
  if (const int rc = reject_unknown_flags(flags, "fuzz-scn")) return rc;

  int rc = 0;
  if (mode != "invalid") {
    options.invalid = false;
    rc |= run_fuzz_mode(options, out_dir);
  }
  if (mode != "valid") {
    options.invalid = true;
    rc |= run_fuzz_mode(options, out_dir);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  try {
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "inspect") return cmd_inspect(flags);
    if (cmd == "check") return cmd_check(flags);
    if (cmd == "simulate") return cmd_simulate(flags);
    if (cmd == "upgrade") return cmd_upgrade(flags);
    if (cmd == "run") return cmd_run(flags);
    if (cmd == "merge") return cmd_merge(flags);
    if (cmd == "fuzz-scn") return cmd_fuzz_scn(flags);
    return usage();
  } catch (const AssertionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
