// Project-invariant static analyzer (see lint_core.h for the rule
// catalog and docs/STATIC_ANALYSIS.md for the why behind each rule).
//
//   usage: lad_lint [--root DIR] [--layers FILE] [--list-rules] [dir ...]
//
// Walks src/ bench/ tools/ examples/ cmake/ under --root (default: the
// current directory), prints one `file:line: rule: message` diagnostic
// per finding, and exits 1 if anything fired.  Runs as ctest `smoke.lint`
// so the gate is local-first, not CI-only.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint_core.h"

int main(int argc, char** argv) {
  lad::lint::Config cfg;
  std::string layers_file;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      cfg.root = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_file = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& rule : lad::lint::rule_names()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: lad_lint [--root DIR] [--layers FILE] [--list-rules] "
          "[dir ...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lad_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (!dirs.empty()) cfg.scan_dirs = dirs;
  if (layers_file.empty()) {
    layers_file = cfg.root + "/tools/lint_rules/layers.txt";
  }
  if (const std::string err = lad::lint::load_layer_rules(layers_file, cfg);
      !err.empty()) {
    std::fprintf(stderr, "lad_lint: %s\n", err.c_str());
    return 2;
  }

  const std::vector<lad::lint::Finding> findings = lad::lint::lint_tree(cfg);
  for (const lad::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", lad::lint::format_finding(f).c_str());
  }
  if (findings.empty()) {
    std::printf("lad_lint: clean (%zu rules, root %s)\n",
                lad::lint::rule_names().size(), cfg.root.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "lad_lint: %zu finding(s).  Fix, or suppress a justified "
               "exception with `// lad-lint: allow(<rule>) -- <why>`.\n",
               findings.size());
  return 1;
}
