// Project-invariant static analyzer (see lint_core.h for the rule
// catalog and docs/STATIC_ANALYSIS.md for the why behind each rule).
//
//   usage: lad_lint [--root DIR] [--layers FILE] [--allowlist FILE]
//                   [--warn-only RULE] [--format plain|github]
//                   [--include-report] [--list-rules] [dir ...]
//
// Walks src/ bench/ tools/ examples/ cmake/ tests/ under --root (default:
// the current directory), prints one `file:line: rule: message` diagnostic
// per finding, and exits:
//
//   0  clean (warn-only findings may still have been printed)
//   1  at least one enforced finding
//   2  broken invocation: unknown flag, missing flag value, unreadable
//      root/layers/allowlist, or an unreadable source file
//
// CI and scripts rely on the 1-vs-2 split to tell a dirty tree from a
// misconfigured run.  Runs as ctest `smoke.lint` so the gate is
// local-first, not CI-only.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint_core.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

int usage_error(const std::string& message) {
  std::fprintf(stderr, "lad_lint: %s\n", message.c_str());
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  lad::lint::Config cfg;
  std::string layers_file;
  std::string allowlist_file;
  std::string format = "plain";
  bool include_report = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return usage_error("--root requires a value");
      cfg.root = v;
    } else if (arg == "--layers") {
      const char* v = value("--layers");
      if (v == nullptr) return usage_error("--layers requires a value");
      layers_file = v;
    } else if (arg == "--allowlist") {
      const char* v = value("--allowlist");
      if (v == nullptr) return usage_error("--allowlist requires a value");
      allowlist_file = v;
    } else if (arg == "--warn-only") {
      const char* v = value("--warn-only");
      if (v == nullptr) return usage_error("--warn-only requires a rule name");
      const auto& known = lad::lint::rule_names();
      if (std::find(known.begin(), known.end(), v) == known.end()) {
        return usage_error("--warn-only names an unknown rule: " +
                           std::string(v));
      }
      cfg.warn_only.insert(v);
    } else if (arg == "--format") {
      const char* v = value("--format");
      if (v == nullptr) return usage_error("--format requires a value");
      format = v;
      if (format != "plain" && format != "github") {
        return usage_error("--format must be `plain` or `github`, got `" +
                           format + "`");
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "plain" && format != "github") {
        return usage_error("--format must be `plain` or `github`, got `" +
                           format + "`");
      }
    } else if (arg == "--include-report") {
      include_report = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : lad::lint::rule_names()) {
        std::printf("%s\n", rule.c_str());
      }
      return kExitClean;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: lad_lint [--root DIR] [--layers FILE] [--allowlist FILE]\n"
          "                [--warn-only RULE] [--format plain|github]\n"
          "                [--include-report] [--list-rules] [dir ...]\n"
          "exit codes: 0 clean, 1 findings, 2 usage/IO error\n");
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error("unknown flag '" + arg + "'");
    } else {
      dirs.push_back(arg);
    }
  }
  if (!dirs.empty()) cfg.scan_dirs = dirs;

  std::error_code ec;
  if (!std::filesystem::is_directory(cfg.root, ec)) {
    return usage_error("--root is not a directory: " + cfg.root);
  }

  if (layers_file.empty()) {
    layers_file = cfg.root + "/tools/lint_rules/layers.txt";
  }
  if (const std::string err = lad::lint::load_layer_rules(layers_file, cfg);
      !err.empty()) {
    return usage_error(err);
  }
  // The allowlist is optional at its default location (a tree without a
  // curated API surface simply has none), but naming one explicitly that
  // cannot be read is a broken invocation.
  if (allowlist_file.empty()) {
    const std::string candidate =
        cfg.root + "/tools/lint_rules/public_api.allow";
    if (std::filesystem::exists(candidate, ec)) allowlist_file = candidate;
  }
  if (!allowlist_file.empty()) {
    if (const std::string err =
            lad::lint::load_public_allowlist(allowlist_file, cfg);
        !err.empty()) {
      return usage_error(err);
    }
  }

  std::string report;
  const std::vector<lad::lint::Finding> findings =
      lad::lint::lint_tree(cfg, include_report ? &report : nullptr);

  std::size_t enforced = 0;
  std::size_t warnings = 0;
  for (const lad::lint::Finding& f : findings) {
    if (f.rule == "io-error") {
      return usage_error("cannot read " + f.file);
    }
    const std::string line = format == "github"
                                 ? lad::lint::format_finding_github(f)
                                 : lad::lint::format_finding(f);
    std::fprintf(stderr, "%s\n", line.c_str());
    if (f.warning) {
      ++warnings;
    } else {
      ++enforced;
    }
  }

  if (include_report) std::printf("%s", report.c_str());

  if (enforced == 0) {
    std::printf("lad_lint: clean (%zu rules, root %s%s)\n",
                lad::lint::rule_names().size(), cfg.root.c_str(),
                warnings != 0 ? ", warn-only findings above" : "");
    return kExitClean;
  }
  std::fprintf(stderr,
               "lad_lint: %zu finding(s).  Fix, or suppress a justified "
               "exception with `// lad-lint: allow(<rule>) -- <why>`.\n",
               enforced);
  return kExitFindings;
}
