#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "lint_index.h"

namespace lad::lint {

namespace {

namespace fs = std::filesystem;

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `needle` occurs in `code` not preceded by an identifier
/// character (so "rand(" does not fire inside "srand(").  When
/// `bound_after` is set the character following the needle must not be an
/// identifier character either (so "std::rand" does not fire inside
/// "std::random_device").
bool has_token(const std::string& code, const std::string& needle,
               bool bound_after = false) {
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string::npos) {
    const bool ok_before = pos == 0 || !is_word(code[pos - 1]);
    const std::size_t after = pos + needle.size();
    const bool ok_after =
        !bound_after || after >= code.size() || !is_word(code[after]);
    if (ok_before && ok_after) return true;
    pos += 1;
  }
  return false;
}

/// Matches a call to lgamma/lgammaf (optionally std::-qualified) but not
/// lgamma_r or lgamma_threadsafe.
bool has_lgamma_call(const std::string& code) {
  std::size_t pos = 0;
  while ((pos = code.find("lgamma", pos)) != std::string::npos) {
    const bool ok_before = pos == 0 || !is_word(code[pos - 1]);
    std::size_t after = pos + 6;
    if (after < code.size() && code[after] == 'f') ++after;  // lgammaf
    while (after < code.size() && code[after] == ' ') ++after;
    if (ok_before && after < code.size() && code[after] == '(') return true;
    pos += 1;
  }
  return false;
}

struct StrippedLine {
  std::string code;     // comments removed, string/char literals blanked
  std::string comment;  // concatenated comment text (for allow parsing)
};

/// Multi-line scanner state: /* ... */ block comments and raw string
/// literals R"delim( ... )delim" both cross line boundaries, and the two
/// must not be confused — a banned token inside a raw string is data,
/// not code, and a raw string's closing quote must not terminate the
/// wrong construct.
struct ScanState {
  bool in_block = false;   // inside /* ... */
  bool in_raw = false;     // inside a raw string literal
  std::string raw_close;   // the ")delim\"" sequence that ends it
};

/// True when the `"` at raw[i] opens a raw string literal: an R
/// immediately before (with optional u8/u/U/L encoding prefix), itself
/// preceded by a non-identifier character.
bool opens_raw_string(const std::string& raw, std::size_t i) {
  if (i == 0 || raw[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // points at 'R'
  if (p >= 1) {
    // Skip an encoding prefix: u8R" uR" UR" LR".
    if (p >= 2 && raw[p - 2] == 'u' && raw[p - 1] == '8') {
      p -= 2;
    } else if (raw[p - 1] == 'u' || raw[p - 1] == 'U' || raw[p - 1] == 'L') {
      p -= 1;
    }
  }
  return p == 0 || !is_word(raw[p - 1]);
}

/// One-pass comment/string scanner.  CMake mode swaps the comment
/// grammar: `#` to end of line, no block comments, and only double-quoted
/// strings.
StrippedLine strip_line(const std::string& raw, ScanState& st,
                        bool cmake = false) {
  StrippedLine out;
  std::size_t i = 0;
  const std::size_t n = raw.size();
  if (cmake) {
    while (i < n) {
      const char c = raw[i];
      if (c == '#') {
        out.comment.append(raw, i + 1, n - (i + 1));
        return out;
      }
      if (c == '"') {
        out.code += c;
        ++i;
        while (i < n && raw[i] != '"') {
          if (raw[i] == '\\' && i + 1 < n) {
            out.code += "  ";
            i += 2;
          } else {
            out.code += ' ';
            ++i;
          }
        }
        if (i < n) {
          out.code += '"';
          ++i;
        }
        continue;
      }
      out.code += c;
      ++i;
    }
    return out;
  }
  while (i < n) {
    if (st.in_block) {
      const std::size_t close = raw.find("*/", i);
      if (close == std::string::npos) {
        out.comment.append(raw, i, n - i);
        return out;
      }
      out.comment.append(raw, i, close - i);
      st.in_block = false;
      i = close + 2;
      continue;
    }
    if (st.in_raw) {
      const std::size_t close = raw.find(st.raw_close, i);
      if (close == std::string::npos) return out;  // still inside the literal
      st.in_raw = false;
      out.code += '"';
      i = close + st.raw_close.size();
      continue;
    }
    const char c = raw[i];
    if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      out.comment.append(raw, i + 2, n - (i + 2));
      return out;
    }
    if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      st.in_block = true;
      i += 2;
      continue;
    }
    if (c == '"' && opens_raw_string(raw, i)) {
      // R"delim( ... )delim" — the delimiter (up to 16 chars, no
      // parens/spaces) picks the only close sequence that counts.
      const std::size_t open_paren = raw.find('(', i + 1);
      if (open_paren == std::string::npos) {
        // Malformed raw literal; treat the rest of the line as opaque.
        return out;
      }
      // The emitted code already holds the prefix R (and u8/u/U/L);
      // keep one quote so token boundaries stay intact.
      out.code += '"';
      st.raw_close = ")" + raw.substr(i + 1, open_paren - (i + 1)) + "\"";
      st.in_raw = true;
      i = open_paren + 1;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.code += quote;
      ++i;
      while (i < n) {
        if (raw[i] == '\\' && i + 1 < n) {
          out.code += "  ";
          i += 2;
          continue;
        }
        if (raw[i] == quote) break;
        out.code += ' ';
        ++i;
      }
      if (i < n) {
        out.code += quote;
        ++i;
      }
      continue;
    }
    out.code += c;
    ++i;
  }
  return out;
}

std::string trim_copy(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses every suppression comment (kTag below, followed by a rule
/// list, ')', and a `--`-introduced justification) in the comment text.
/// Well-formed allowances land in `allowed`; malformed ones (missing
/// justification, unknown rule, unclosed list) become `allow-syntax`
/// findings.
void parse_allow(const std::string& comment, const std::string& file, int line,
                 std::set<std::string>& allowed, std::vector<Finding>& out) {
  static const std::string kTag = "lad-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = comment.find(')', open);
    pos = open;
    if (close == std::string::npos) {
      out.push_back({file, line, "allow-syntax",
                     "unclosed lad-lint: allow(...) comment", false});
      return;
    }
    std::vector<std::string> rules;
    std::istringstream list(comment.substr(open, close - open));
    std::string item;
    while (std::getline(list, item, ',')) {
      item = trim_copy(item);
      if (!item.empty()) rules.push_back(item);
    }
    const std::string rest = trim_copy(comment.substr(close + 1));
    const bool justified =
        starts_with(rest, "--") && !trim_copy(rest.substr(2)).empty();
    if (rules.empty()) {
      out.push_back({file, line, "allow-syntax",
                     "lad-lint: allow() names no rule", false});
    }
    for (const std::string& rule : rules) {
      const auto& known = rule_names();
      if (std::find(known.begin(), known.end(), rule) == known.end()) {
        out.push_back({file, line, "allow-syntax",
                       "lad-lint: allow(" + rule + ") names an unknown rule",
                       false});
        continue;
      }
      if (!justified) {
        out.push_back(
            {file, line, "allow-syntax",
             "lad-lint: allow(" + rule +
                 ") needs a justification: `allow(" + rule + ") -- why`",
             false});
        continue;
      }
      allowed.insert(rule);
    }
    pos = close + 1;
  }
}

/// First path segment of `rel_path` under src/, or "" when not in src.
std::string src_layer_of(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return "";
  const std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel_path.substr(4, slash - 4);
}

bool is_cmake_file(const std::string& rel_path) {
  return ends_with(rel_path, "CMakeLists.txt") || ends_with(rel_path, ".cmake");
}

bool is_kernel_tu(const std::string& rel_path) {
  const std::size_t slash = rel_path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? rel_path : rel_path.substr(slash + 1);
  return starts_with(base, "observe_kernel");
}

const char* const kFastMathFlags[] = {
    "-ffast-math",       "-Ofast",
    "-fassociative-math", "-freciprocal-math",
    "-funsafe-math-optimizations", "-ffp-contract=fast"};

// Matches `Rng name(...)` / `Rng name{...}` / `lad::Rng name(...)` / a
// bare `Rng(...)` temporary, but not `Rng::stream(...)` (the predicate
// needs '(' or '{' right after `Rng`) or identifiers merely ending in
// Rng (ScopedTestRng — the leading word boundary).
const std::regex kRngNamed(R"((^|\W)Rng\s+[A-Za-z_]\w*\s*[({])");
const std::regex kRngTemp(R"((^|\W)Rng\s*[({])");

struct FileContext {
  std::string rel_path;
  std::string layer;        // "" outside src/
  bool cmake = false;
  bool kernel = false;
  bool timing_exempt = false;   // bench/ and tools/ may read clocks
  bool rng_exempt = false;      // src/rng/ and tests/support/ construct Rng
  bool getenv_exempt = false;   // src/util/env.cpp wraps getenv
  bool writes_output = false;   // includes util/csv.h or core/serialize.h
};

FileContext classify(const std::string& rel_path, const std::string& content) {
  FileContext ctx;
  ctx.rel_path = rel_path;
  ctx.layer = src_layer_of(rel_path);
  ctx.cmake = is_cmake_file(rel_path);
  ctx.kernel = is_kernel_tu(rel_path);
  ctx.timing_exempt =
      starts_with(rel_path, "bench/") || starts_with(rel_path, "tools/");
  // Library code must take an Rng stream; entry points (bench mains,
  // examples, tools) legitimately own their root seed, and src/rng/ and
  // tests/support/ define the constructors and fixtures themselves.
  ctx.rng_exempt = !starts_with(rel_path, "src/") ||
                   starts_with(rel_path, "src/rng/") ||
                   starts_with(rel_path, "tests/support/");
  ctx.getenv_exempt = rel_path == "src/util/env.cpp";
  ctx.writes_output = content.find("util/csv.h") != std::string::npos ||
                      content.find("core/serialize.h") != std::string::npos;
  return ctx;
}

void lint_code_line(const FileContext& ctx, const std::string& code, int line,
                    const std::set<std::string>& allowed,
                    std::vector<Finding>& out) {
  const auto emit = [&](const std::string& rule, const std::string& msg) {
    if (allowed.count(rule) == 0) {
      out.push_back({ctx.rel_path, line, rule, msg, false});
    }
  };

  if (ctx.cmake) {
    for (const char* flag : kFastMathFlags) {
      if (code.find(flag) != std::string::npos) {
        emit("fast-math",
             std::string(flag) +
                 " breaks bit-identity of the observe/scoring kernels");
      }
    }
    return;
  }

  // --- determinism bans ------------------------------------------------
  if (has_token(code, "std::rand", /*bound_after=*/true) ||
      has_token(code, "srand(") || has_token(code, "rand(")) {
    emit("ban-rand", "C rand() is not seedable per-stream; use lad::Rng");
  }
  if (code.find("random_device") != std::string::npos) {
    emit("ban-rand",
         "std::random_device is nondeterministic; use lad::Rng streams");
  }
  if (!ctx.timing_exempt) {
    if (has_token(code, "time(") || has_token(code, "clock(")) {
      emit("ban-time",
           "wall-clock reads in library code break replayable output");
    }
    // Matching the clock *types* (not just ::now) also catches the
    // `using Clock = std::chrono::steady_clock` alias pattern.
    if (has_token(code, "steady_clock") || has_token(code, "system_clock") ||
        has_token(code, "high_resolution_clock")) {
      emit("ban-clock-now",
           "std::chrono clock reads belong in bench/ and tools/ only");
    }
  }
  if (has_lgamma_call(code)) {
    emit("ban-lgamma",
         "std::lgamma writes the global signgam (data race); call lgamma_r");
  }
  if (ctx.writes_output && (code.find("unordered_map") != std::string::npos ||
                            code.find("unordered_set") != std::string::npos)) {
    emit("unordered-output",
         "unordered container in a TU that writes CSV/bundle output; "
         "iteration order is not reproducible — use std::map/std::set or "
         "sort before emitting");
  }

  // --- kernel float rules ----------------------------------------------
  if (ctx.kernel) {
    if (code.find("fmadd") != std::string::npos ||
        has_token(code, "std::fma", /*bound_after=*/true) ||
        has_token(code, "fma(") || has_token(code, "fmaf(")) {
      emit("kernel-no-fma",
           "fused multiply-add keeps products unrounded and can flip "
           "borderline <= a2 compares vs the scalar reference");
    }
    const bool has_cmp = code.find("_mm256_cmp_pd") != std::string::npos ||
                         code.find("_mm_cmp_pd") != std::string::npos ||
                         code.find("_mm512_cmp_pd") != std::string::npos;
    bool saw_predicate = false;
    std::size_t pos = 0;
    while ((pos = code.find("_CMP_", pos)) != std::string::npos) {
      std::size_t end = pos + 5;
      while (end < code.size() && is_word(code[end])) ++end;
      const std::string pred = code.substr(pos, end - pos);
      saw_predicate = true;
      if (!ends_with(pred, "_OQ")) {
        emit("kernel-cmp-ordered",
             pred + " is not in the ordered-quiet (_CMP_*_OQ) family the "
                    "scalar reference compare maps to");
      }
      pos = end;
    }
    if (has_cmp && !saw_predicate) {
      emit("kernel-cmp-ordered",
           "vector compare without a literal _CMP_*_OQ predicate on the "
           "same line; spell the predicate out so it can be audited");
    }
  }

  // --- rng-stream hygiene ----------------------------------------------
  if (!ctx.rng_exempt && (std::regex_search(code, kRngNamed) ||
                          std::regex_search(code, kRngTemp))) {
    emit("rng-construct",
         "direct Rng construction outside src/rng/ and tests/support/; "
         "derive a sub-stream with Rng::stream(seed, stream_id) instead");
  }

  // --- env hygiene ------------------------------------------------------
  if (!ctx.getenv_exempt && has_token(code, "getenv", /*bound_after=*/true)) {
    emit("raw-getenv",
         "raw getenv bypasses the validated lad::env_* helpers "
         "(util/env.h)");
  }
}

/// Extracts the quoted include path from a raw (un-blanked) line, or "".
std::string include_path_of(const std::string& raw) {
  const std::size_t inc = raw.find("#include");
  if (inc == std::string::npos) return "";
  // Only treat it as a directive when nothing but whitespace precedes it.
  for (std::size_t i = 0; i < inc; ++i) {
    if (!std::isspace(static_cast<unsigned char>(raw[i]))) return "";
  }
  const std::size_t q1 = raw.find('"', inc);
  if (q1 == std::string::npos) return "";
  const std::size_t q2 = raw.find('"', q1 + 1);
  if (q2 == std::string::npos) return "";
  return raw.substr(q1 + 1, q2 - q1 - 1);
}

/// Pass-1 rules over an already-scanned file.
std::vector<Finding> lint_scanned(const Config& cfg, const ScannedFile& scan,
                                  const std::string& content) {
  std::vector<Finding> out = scan.allow_findings;
  const FileContext ctx = classify(scan.rel_path, content);

  const auto* deps = ctx.layer.empty() || cfg.layer_deps.count(ctx.layer) == 0
                         ? nullptr
                         : &cfg.layer_deps.at(ctx.layer);
  const bool undeclared_layer =
      !ctx.layer.empty() && cfg.layer_deps.count(ctx.layer) == 0;
  bool reported_undeclared = false;

  static const std::set<std::string> kNoAllows;
  const auto allows_on = [&](int line) -> const std::set<std::string>& {
    const auto it = scan.allows.find(line);
    return it == scan.allows.end() ? kNoAllows : it->second;
  };

  if (!ctx.cmake) {
    for (const IncludeDirective& inc : scan.includes) {
      if (ctx.layer.empty() || inc.path.find('/') == std::string::npos) {
        continue;
      }
      const std::string target = inc.path.substr(0, inc.path.find('/'));
      const std::set<std::string>& allowed = allows_on(inc.line);
      if (undeclared_layer) {
        if (!reported_undeclared && allowed.count("layer-dag") == 0) {
          out.push_back({scan.rel_path, inc.line, "layer-dag",
                         "layer `" + ctx.layer +
                             "` is not declared in layers.txt",
                         false});
          reported_undeclared = true;
        }
      } else if (target != ctx.layer && deps != nullptr) {
        const bool allowed_dep =
            std::find(deps->begin(), deps->end(), target) != deps->end();
        if (!allowed_dep && allowed.count("layer-dag") == 0) {
          std::string allow_list = ctx.layer;
          for (const std::string& d : *deps) allow_list += " " + d;
          out.push_back({scan.rel_path, inc.line, "layer-dag",
                         "src/" + ctx.layer + "/ may not include \"" +
                             inc.path + "\" (allowed: " + allow_list + ")",
                         false});
        }
      }
    }
  }

  for (std::size_t i = 0; i < scan.code.size(); ++i) {
    const int line = static_cast<int>(i) + 1;
    lint_code_line(ctx, scan.code[i], line, allows_on(line), out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) <
           std::tie(b.line, b.rule, b.message);
  });
  return out;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "layer-dag",       "ban-rand",           "ban-time",
      "ban-clock-now",   "ban-lgamma",         "unordered-output",
      "kernel-no-fma",   "kernel-cmp-ordered", "fast-math",
      "rng-construct",   "raw-getenv",         "allow-syntax",
      "include-cycle",   "include-unused",     "include-transitive",
      "dead-public"};
  return names;
}

std::string load_layer_rules(const std::string& path, Config& cfg) {
  std::ifstream in(path);
  if (!in.good()) return "cannot read layer rules file: " + path;
  cfg.layer_deps.clear();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim_copy(line);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return path + ":" + std::to_string(lineno) +
             ": expected `layer: dep dep ...`";
    }
    const std::string layer = trim_copy(line.substr(0, colon));
    if (layer.empty() || cfg.layer_deps.count(layer) != 0) {
      return path + ":" + std::to_string(lineno) +
             ": empty or duplicate layer name";
    }
    std::vector<std::string> deps;
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.push_back(dep);
    cfg.layer_deps.emplace(layer, std::move(deps));
  }
  // Every named dependency must itself be a declared layer.
  for (const auto& [layer, deps] : cfg.layer_deps) {
    for (const std::string& dep : deps) {
      if (cfg.layer_deps.count(dep) == 0) {
        return path + ": layer `" + layer + "` depends on undeclared layer `" +
               dep + "`";
      }
    }
  }
  return "";
}

std::string load_public_allowlist(const std::string& path, Config& cfg) {
  std::ifstream in(path);
  if (!in.good()) return "cannot read public-API allowlist: " + path;
  cfg.dead_public_allow.clear();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim_copy(line);
    if (line.empty()) continue;
    std::istringstream words(line);
    std::string name, extra;
    words >> name;
    if (words >> extra) {
      return path + ":" + std::to_string(lineno) +
             ": expected one symbol name per line";
    }
    cfg.dead_public_allow.insert(name);
  }
  return "";
}

ScannedFile scan_file(const std::string& rel_path, const std::string& content,
                      bool cmake) {
  ScannedFile out;
  out.rel_path = rel_path;
  std::istringstream is(content);
  std::string raw;
  ScanState st;
  int line = 0;
  std::set<std::string> pending;  // allowances from a comment-only line
  while (std::getline(is, raw)) {
    ++line;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    // Raw-string state must win over everything, including a line that
    // happens to start with #include inside the literal.
    const bool was_in_raw = st.in_raw;
    StrippedLine s = strip_line(raw, st, cmake);
    std::set<std::string> allowed = pending;
    parse_allow(s.comment, rel_path, line, allowed, out.allow_findings);

    if (!cmake && !was_in_raw) {
      const std::string inc = include_path_of(raw);
      if (!inc.empty()) {
        const bool keep =
            s.comment.find("IWYU pragma: keep") != std::string::npos;
        const bool exported =
            s.comment.find("IWYU pragma: export") != std::string::npos;
        out.includes.push_back({line, inc, keep, exported});
      }
    }

    if (!allowed.empty()) out.allows[line] = allowed;
    out.code.push_back(s.code);
    pending.clear();
    if (trim_copy(s.code).empty()) pending = allowed;
  }
  return out;
}

std::vector<Finding> lint_file(const Config& cfg, const std::string& rel_path,
                               const std::string& content) {
  const ScannedFile scan = scan_file(rel_path, content, is_cmake_file(rel_path));
  return lint_scanned(cfg, scan, content);
}

std::vector<Finding> lint_tree(const Config& cfg) {
  return lint_tree(cfg, nullptr);
}

std::vector<Finding> lint_tree(const Config& cfg, std::string* report) {
  std::vector<std::string> files;
  const fs::path root(cfg.root);

  const auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
        ext == ".hpp" || ext == ".hh" || ext == ".inl" || ext == ".cmake") {
      return true;
    }
    return p.filename() == "CMakeLists.txt";
  };

  if (fs::exists(root / "CMakeLists.txt")) files.push_back("CMakeLists.txt");
  for (const std::string& dir : cfg.scan_dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !want(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      // tests/data/ holds fixture payload (including deliberately
      // violating lint fixture trees); it is never project source.
      if (rel.find("tests/data/") != std::string::npos) continue;
      files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> out;
  std::map<std::string, std::string> contents;
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in.good()) {
      out.push_back({rel, 0, "io-error", "cannot read file", false});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    contents.emplace(rel, buf.str());
  }

  for (const auto& [rel, content] : contents) {
    std::vector<Finding> findings = lint_file(cfg, rel, content);
    out.insert(out.end(), findings.begin(), findings.end());
  }

  // Pass 2: include graph + symbol index rules.
  const TreeIndex index = TreeIndex::build(cfg, contents);
  std::vector<Finding> tree_findings = index.run_rules(cfg);
  out.insert(out.end(), tree_findings.begin(), tree_findings.end());
  if (report != nullptr) *report = index.include_report();

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.file, a.line, a.rule) <
                            std::tie(b.file, b.line, b.rule);
                   });

  for (Finding& f : out) {
    if (cfg.warn_only.count(f.rule) != 0) f.warning = true;
  }
  return out;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
         f.message;
}

std::string format_finding_github(const Finding& f) {
  const char* const level = f.warning ? "::warning" : "::error";
  return std::string(level) + " file=" + f.file +
         ",line=" + std::to_string(f.line) + "::" + f.rule + ": " + f.message;
}

}  // namespace lad::lint
