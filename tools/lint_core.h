// lad_lint engine: project-invariant static analysis at the token /
// include level (deliberately no libclang — the checks below are textual
// by design, so the tool builds everywhere the project builds and runs in
// milliseconds as a ctest).
//
// The engine runs two passes.  Pass 1 is per-file and enforces the rules
// the runtime gates cannot see until after the damage is done:
//
//   layer-dag            src/<layer>/ may only include headers from its
//                        declared dependency set (tools/lint_rules/layers.txt)
//   ban-rand             std::rand/srand/random_device — all randomness
//                        flows through lad::Rng streams
//   ban-time             time()/clock() wall-clock reads in library code
//   ban-clock-now        std::chrono::*_clock::now outside bench/ + tools/
//   ban-lgamma           std::lgamma/lgammaf write the process-global
//                        `signgam` (TSan-proven race); use lgamma_r
//   unordered-output     unordered_{map,set} in a TU that writes CSV or
//                        bundle output (iteration order is not stable)
//   kernel-no-fma        no fused multiply-add in observe_kernel*.cpp —
//                        unrounded products flip borderline <= a2 compares
//   kernel-cmp-ordered   vector compares in observe_kernel*.cpp must use
//                        the ordered-quiet (_CMP_*_OQ) predicate family
//   fast-math            no -ffast-math-implying flags in any CMakeLists
//   rng-construct        direct Rng construction outside src/rng/ and
//                        tests/support/ — everything else takes a stream
//   raw-getenv           getenv outside the lad::env_* helpers (util/env.cpp)
//   allow-syntax         a suppression comment that names an unknown rule
//                        or omits its `-- justification`
//
// Pass 2 is whole-tree (lint_index.h): it builds an include graph and a
// heuristic symbol index over every project header and enforces
//
//   include-cycle        the include graph must stay acyclic
//   include-unused       a direct #include "..." whose header exports no
//                        token the including file references
//   include-transitive   a project symbol that is used but whose defining
//                        header only arrives transitively (the
//                        refactor-breaking IWYU case)
//   dead-public          a public src/ header symbol referenced by no TU
//                        outside its own layer and no test
//
// Escape hatch: a comment of the form
//
//   lad-lint: <keyword>(<rule>[,<rule>...]) -- <justification>
//
// where the keyword is "allow", placed on the offending line or alone on
// the line above it.  The justification text is mandatory; a suppression
// without one is itself a finding.  (Spelled indirectly here so the
// analyzer does not read its own documentation as a suppression.)
// Include lines additionally honor the standard `IWYU pragma: keep` /
// `IWYU pragma: export` annotations, and dead-public has a checked-in
// allowlist (tools/lint_rules/public_api.allow) for intentional API.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lad::lint {

struct Finding {
  std::string file;  // path as given (relative to the scan root)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  // True when the rule is on the Config::warn_only list: still reported,
  // but a warn-only finding must not fail the build.
  bool warning = false;
};

struct Config {
  // Scan root; scan_dirs are joined under it.  Files are reported
  // relative to this root.  Anything under tests/data/ is fixture
  // payload, never project source, and is always skipped.
  std::string root = ".";
  std::vector<std::string> scan_dirs = {"src",      "bench", "tools",
                                        "examples", "cmake", "tests"};
  // Layer dependency DAG: layer -> layers it may include from (its own
  // name is always allowed implicitly).  Loaded from layers.txt.
  std::map<std::string, std::vector<std::string>> layer_deps;
  // Rules demoted to report-only: findings carry warning=true and the
  // CLI does not count them toward the exit code.
  std::set<std::string> warn_only;
  // Symbol names that are intentional public API surface; dead-public
  // never fires on them.  Loaded from public_api.allow.
  std::set<std::string> dead_public_allow;
};

/// One quoted #include directive as seen in a file.
struct IncludeDirective {
  int line = 0;
  std::string path;        // as written between the quotes
  bool iwyu_keep = false;    // carries `IWYU pragma: keep`
  bool iwyu_export = false;  // carries `IWYU pragma: export`
};

/// The scanner's view of one file: comments and string/char literals
/// stripped (block comments and raw string literals may span lines — the
/// scanner carries that state), suppression comments resolved into a
/// per-line allow map, and include directives extracted.
struct ScannedFile {
  std::string rel_path;
  std::vector<std::string> code;  // stripped code, code[i] is line i+1
  // line -> rules a well-formed suppression allows on that line (the
  // same-line hatch plus a comment-only line covering the next line).
  std::map<int, std::set<std::string>> allows;
  std::vector<IncludeDirective> includes;
  // Malformed suppressions found while scanning (allow-syntax).
  std::vector<Finding> allow_findings;
};

/// Every rule name the engine can emit, for --list-rules and for
/// validating allow() comments.
const std::vector<std::string>& rule_names();

/// Parses a layers.txt ("layer: dep dep ..." lines, '#' comments) into
/// cfg.layer_deps.  Returns "" on success or a description of the
/// malformed line.
std::string load_layer_rules(const std::string& path, Config& cfg);

/// Parses a public_api.allow (one symbol per line, '#' comments) into
/// cfg.dead_public_allow.  Returns "" on success or an error message.
std::string load_public_allowlist(const std::string& path, Config& cfg);

/// Runs the comment/string scanner over one file body.  `cmake` swaps
/// the comment grammar (# to end of line, no block comments).
ScannedFile scan_file(const std::string& rel_path, const std::string& content,
                      bool cmake);

/// Lints one file body (pass 1 only).  `rel_path` selects which rules
/// apply (layer membership, kernel TUs, CMake files).
std::vector<Finding> lint_file(const Config& cfg, const std::string& rel_path,
                               const std::string& content);

/// Walks cfg.scan_dirs under cfg.root and runs both passes over every
/// source/CMake file.  Missing scan dirs are skipped (fixture trees
/// rarely have all of them).  Unreadable files produce findings with the
/// pseudo-rule "io-error"; the CLI maps those to exit 2, not exit 1.
std::vector<Finding> lint_tree(const Config& cfg);

/// Same walk, but also returns the include depth/fan-in report that
/// `lad_lint --include-report` prints (empty when report == nullptr).
std::vector<Finding> lint_tree(const Config& cfg, std::string* report);

/// "file:line: rule: message" — the one true diagnostic format (tests
/// assert on it verbatim).
std::string format_finding(const Finding& f);

/// GitHub Actions workflow-annotation form:
/// "::error file=<file>,line=<line>::<rule>: <message>" (::warning for
/// warn-only findings).
std::string format_finding_github(const Finding& f);

}  // namespace lad::lint
