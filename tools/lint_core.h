// lad_lint engine: project-invariant static analysis at the token /
// include level (deliberately no libclang — the checks below are textual
// by design, so the tool builds everywhere the project builds and runs in
// milliseconds as a ctest).
//
// The rules encode invariants the runtime gates cannot see until after
// the damage is done:
//
//   layer-dag            src/<layer>/ may only include headers from its
//                        declared dependency set (tools/lint_rules/layers.txt)
//   ban-rand             std::rand/srand/random_device — all randomness
//                        flows through lad::Rng streams
//   ban-time             time()/clock() wall-clock reads in library code
//   ban-clock-now        std::chrono::*_clock::now outside bench/ + tools/
//   ban-lgamma           std::lgamma/lgammaf write the process-global
//                        `signgam` (TSan-proven race); use lgamma_r
//   unordered-output     unordered_{map,set} in a TU that writes CSV or
//                        bundle output (iteration order is not stable)
//   kernel-no-fma        no fused multiply-add in observe_kernel*.cpp —
//                        unrounded products flip borderline <= a2 compares
//   kernel-cmp-ordered   vector compares in observe_kernel*.cpp must use
//                        the ordered-quiet (_CMP_*_OQ) predicate family
//   fast-math            no -ffast-math-implying flags in any CMakeLists
//   rng-construct        direct Rng construction outside src/rng/ and
//                        tests/support/ — everything else takes a stream
//   raw-getenv           getenv outside the lad::env_* helpers (util/env.cpp)
//   allow-syntax         a suppression comment that names an unknown rule
//                        or omits its `-- justification`
//
// Escape hatch: a comment of the form
//
//   lad-lint: <keyword>(<rule>[,<rule>...]) -- <justification>
//
// where the keyword is "allow", placed on the offending line or alone on
// the line above it.  The justification text is mandatory; a suppression
// without one is itself a finding.  (Spelled indirectly here so the
// analyzer does not read its own documentation as a suppression.)
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lad::lint {

struct Finding {
  std::string file;  // path as given (relative to the scan root)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

struct Config {
  // Scan root; scan_dirs are joined under it.  Files are reported
  // relative to this root.
  std::string root = ".";
  std::vector<std::string> scan_dirs = {"src", "bench", "tools", "examples",
                                        "cmake"};
  // Layer dependency DAG: layer -> layers it may include from (its own
  // name is always allowed implicitly).  Loaded from layers.txt.
  std::map<std::string, std::vector<std::string>> layer_deps;
};

/// Every rule name the engine can emit, for --list-rules and for
/// validating allow() comments.
const std::vector<std::string>& rule_names();

/// Parses a layers.txt ("layer: dep dep ..." lines, '#' comments) into
/// cfg.layer_deps.  Returns "" on success or a description of the
/// malformed line.
std::string load_layer_rules(const std::string& path, Config& cfg);

/// Lints one file body.  `rel_path` selects which rules apply (layer
/// membership, kernel TUs, CMake files).
std::vector<Finding> lint_file(const Config& cfg, const std::string& rel_path,
                               const std::string& content);

/// Walks cfg.scan_dirs under cfg.root and lints every source/CMake file.
/// Missing scan dirs are skipped (fixture trees rarely have all four).
std::vector<Finding> lint_tree(const Config& cfg);

/// "file:line: rule: message" — the one true diagnostic format (tests
/// assert on it verbatim).
std::string format_finding(const Finding& f);

}  // namespace lad::lint
