#include "lint_index.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <functional>
#include <iomanip>
#include <sstream>

#include "lint_core.h"

namespace lad::lint {

namespace {

namespace fs = std::filesystem;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& rel_path) {
  return ends_with(rel_path, ".h") || ends_with(rel_path, ".hpp") ||
         ends_with(rel_path, ".hh") || ends_with(rel_path, ".inl");
}

bool is_cmake_file(const std::string& rel_path) {
  return ends_with(rel_path, "CMakeLists.txt") || ends_with(rel_path, ".cmake");
}

std::string src_layer_of(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return "";
  const std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel_path.substr(4, slash - 4);
}

/// Filename without directory or extension: "src/deploy/network.h" ->
/// "network".  Used for the self-header exemption (foo.cpp includes
/// foo.h to pin its own interface, whether or not it names a symbol).
std::string stem_of(const std::string& rel_path) {
  return fs::path(rel_path).stem().generic_string();
}

// `observe_kernel_avx2.cpp` belongs to `observe_kernel.h`: a TU whose
// stem extends a header's stem at a `_` boundary (or vice versa) is part
// of the same header family, so the pair is exempt from the per-symbol
// include rules just like an exact self-header match.
bool associated_stems(const std::string& a, const std::string& b) {
  if (a == b) return true;
  const auto extends = [](const std::string& longer,
                          const std::string& shorter) {
    return longer.size() > shorter.size() + 1 &&
           longer.compare(0, shorter.size(), shorter) == 0 &&
           longer[shorter.size()] == '_';
  };
  return extends(a, b) || extends(b, a);
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident(const std::string& t) {
  return !t.empty() && !std::isdigit(static_cast<unsigned char>(t[0])) &&
         std::all_of(t.begin(), t.end(), is_ident_char);
}

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "alignas",  "alignof",  "auto",     "bool",      "break",    "case",
      "catch",    "char",     "class",    "concept",   "const",    "constexpr",
      "consteval","constinit","continue", "decltype",  "default",  "delete",
      "do",       "double",   "else",     "enum",      "explicit", "export",
      "extern",   "false",    "final",    "float",     "for",      "friend",
      "goto",     "if",       "inline",   "int",       "long",     "mutable",
      "namespace","new",      "noexcept", "nullptr",   "operator", "override",
      "private",  "protected","public",   "register",  "requires", "return",
      "short",    "signed",   "sizeof",   "static",    "static_assert",
      "struct",   "switch",   "template", "this",      "throw",    "true",
      "try",      "typedef",  "typeid",   "typename",  "union",    "unsigned",
      "using",    "virtual",  "void",     "volatile",  "wchar_t",  "while"};
  return kw;
}

struct Tok {
  std::string text;
  int line = 0;
};

/// Tokenizes stripped code into identifiers and the punctuation the
/// symbol scanner cares about ("::" is one token).  Preprocessor lines
/// (and their backslash continuations) are handled by the caller, so
/// they never reach this tokenizer's brace tracking.
void tokenize_line(const std::string& s, int line, std::vector<Tok>& out) {
  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(s[j])) ++j;
      out.push_back({s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      out.push_back({"::", line});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), line});
    ++i;
  }
}

struct Scope {
  char kind = 'x';  // 'n' namespace/extern, 't' type, 'e' enum, 'x' other
  bool internal = false;
};

/// True when every open scope is a namespace (or extern "C") block —
/// i.e. we are at namespace scope, where public declarations live.
bool at_ns_scope(const std::vector<Scope>& scopes) {
  return std::all_of(scopes.begin(), scopes.end(),
                     [](const Scope& s) { return s.kind == 'n'; });
}

bool enclosing_internal(const std::vector<Scope>& scopes) {
  return std::any_of(scopes.begin(), scopes.end(),
                     [](const Scope& s) { return s.internal; });
}

}  // namespace

std::vector<Symbol> extract_symbols(const std::vector<std::string>& code) {
  std::vector<Symbol> out;
  std::vector<Tok> toks;
  bool continuation = false;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const int line = static_cast<int>(i) + 1;
    const std::string& s = code[i];
    std::size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    const bool backslash_tail = !s.empty() && s.back() == '\\';
    if (continuation) {
      continuation = backslash_tail;
      continue;
    }
    if (b < s.size() && s[b] == '#') {
      // Preprocessor: only #define mints a symbol; bodies (which may
      // contain unbalanced braces) must not reach the scope tracker.
      std::istringstream dir(s.substr(b + 1));
      std::string word;
      dir >> word;
      if (word == "define") {
        std::string name;
        dir >> name;
        const std::size_t paren = name.find('(');
        if (paren != std::string::npos) name.erase(paren);
        if (is_ident(name) && !ends_with(name, "_H") &&
            !ends_with(name, "_H_")) {  // skip include guards
          out.push_back({name, Symbol::Kind::kMacro, line, true, false});
        }
      }
      continuation = backslash_tail;
      continue;
    }
    tokenize_line(s, line, toks);
  }

  std::vector<Scope> scopes;
  // Statement context: identifier/keyword tokens at paren depth 0 and
  // angle depth 0, up to the first '=' of the statement.
  std::vector<Tok> ctx;
  int paren_depth = 0;
  int angle_depth = 0;
  int bracket_depth = 0;
  bool saw_eq = false;
  char enum_prev = '{';  // inside an enum: previous separator token

  const auto ns_internal = [&](const std::string& name) {
    return name.empty() || name == "detail" || name == "internal" ||
           name == "impl";
  };

  const auto find_kw = [&](std::initializer_list<const char*> kws) {
    for (std::size_t k = 0; k < ctx.size(); ++k) {
      for (const char* kw : kws) {
        if (ctx[k].text == kw) return static_cast<int>(k);
      }
    }
    return -1;
  };

  // The identifier following ctx[from], skipping specifier noise.
  const auto name_after = [&](int from, Tok& name) {
    static const std::set<std::string> skip = {"class", "struct", "alignas",
                                              "final", "inline"};
    for (std::size_t k = static_cast<std::size_t>(from) + 1; k < ctx.size();
         ++k) {
      const std::string& t = ctx[k].text;
      if (skip.count(t) != 0) continue;
      if (!is_ident(t)) return false;
      name = ctx[k];
      return true;
    }
    return false;
  };

  const auto reset_stmt = [&] {
    ctx.clear();
    saw_eq = false;
    angle_depth = 0;
  };

  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    const Tok& tok = toks[ti];
    const std::string& t = tok.text;

    if (t == "(") {
      if (paren_depth == 0 && !saw_eq && at_ns_scope(scopes) &&
          angle_depth == 0 && ctx.size() >= 2 && find_kw({"operator"}) < 0 &&
          find_kw({"using", "typedef", "namespace", "class", "struct",
                   "union", "enum", "friend"}) < 0) {
        const Tok& prev = ctx.back();
        const Tok& before = ctx[ctx.size() - 2];
        if (is_ident(prev.text) && cpp_keywords().count(prev.text) == 0 &&
            before.text != "::") {
          out.push_back({prev.text, Symbol::Kind::kFunction, prev.line, true,
                         enclosing_internal(scopes)});
        }
      }
      ++paren_depth;
      continue;
    }
    if (t == ")") {
      if (paren_depth > 0) --paren_depth;
      continue;
    }
    if (paren_depth > 0) continue;
    if (t == "[") {
      ++bracket_depth;
      continue;
    }
    if (t == "]") {
      if (bracket_depth > 0) --bracket_depth;
      continue;
    }
    if (bracket_depth > 0) continue;

    if (t == "{") {
      Scope sc;
      if (!scopes.empty() && scopes.back().kind == 'e') {
        // Nested brace inside an enum body cannot happen; defensive.
        sc.kind = 'x';
      } else if (find_kw({"namespace"}) >= 0) {
        sc.kind = 'n';
        Tok name;
        const bool named = name_after(find_kw({"namespace"}), name);
        sc.internal = enclosing_internal(scopes) ||
                      !named || ns_internal(name.text);
      } else if (find_kw({"enum"}) >= 0) {
        sc.kind = 'e';
        enum_prev = '{';
        Tok name;
        if (at_ns_scope(scopes) && name_after(find_kw({"enum"}), name)) {
          out.push_back({name.text, Symbol::Kind::kType, name.line, true,
                         enclosing_internal(scopes)});
        }
      } else if (find_kw({"class", "struct", "union"}) >= 0 && !saw_eq) {
        sc.kind = 't';
        Tok name;
        if (at_ns_scope(scopes) &&
            name_after(find_kw({"class", "struct", "union"}), name)) {
          out.push_back({name.text, Symbol::Kind::kType, name.line, true,
                         enclosing_internal(scopes)});
        }
      } else if (find_kw({"extern"}) >= 0 && ctx.size() <= 2) {
        sc.kind = 'n';  // extern "C" { ... }
        sc.internal = enclosing_internal(scopes);
      } else {
        sc.kind = 'x';
      }
      scopes.push_back(sc);
      reset_stmt();
      continue;
    }
    if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      reset_stmt();
      continue;
    }
    if (t == ";") {
      // Forward declarations and typedefs complete at the semicolon.
      if (!saw_eq && at_ns_scope(scopes)) {
        const int kw = find_kw({"class", "struct", "union", "enum"});
        if (kw >= 0 && find_kw({"typedef", "using", "friend", "template"}) < 0) {
          Tok name;
          if (name_after(kw, name)) {
            out.push_back({name.text, Symbol::Kind::kType, name.line, false,
                           enclosing_internal(scopes)});
          }
        } else if (!ctx.empty() && ctx[0].text == "typedef") {
          for (std::size_t k = ctx.size(); k-- > 1;) {
            if (is_ident(ctx[k].text) &&
                cpp_keywords().count(ctx[k].text) == 0) {
              out.push_back({ctx[k].text, Symbol::Kind::kAlias, ctx[k].line,
                             true, enclosing_internal(scopes)});
              break;
            }
          }
        }
      }
      reset_stmt();
      continue;
    }
    if (t == "=") {
      if (!saw_eq && paren_depth == 0 && angle_depth == 0 &&
          at_ns_scope(scopes) && !ctx.empty()) {
        if (ctx[0].text == "using" && ctx.size() >= 2 &&
            is_ident(ctx[1].text) && ctx[1].text != "namespace") {
          out.push_back({ctx[1].text, Symbol::Kind::kAlias, ctx[1].line, true,
                         enclosing_internal(scopes)});
        } else if (ctx.size() >= 2 && is_ident(ctx.back().text) &&
                   cpp_keywords().count(ctx.back().text) == 0 &&
                   find_kw({"class", "struct", "union", "enum", "template",
                            "typedef"}) < 0) {
          out.push_back({ctx.back().text, Symbol::Kind::kConstant,
                         ctx.back().line, true, enclosing_internal(scopes)});
        }
      }
      saw_eq = true;
      continue;
    }

    // Enumerators: identifiers in an enum body right after '{' or ','.
    if (!scopes.empty() && scopes.back().kind == 'e') {
      if (t == ",") {
        enum_prev = ',';
      } else if (is_ident(t) && (enum_prev == '{' || enum_prev == ',')) {
        const bool ns_enum =
            at_ns_scope(std::vector<Scope>(scopes.begin(), scopes.end() - 1));
        if (ns_enum) {
          out.push_back({t, Symbol::Kind::kEnumerator, tok.line, true,
                         enclosing_internal(scopes)});
        }
        enum_prev = 'i';
      } else {
        enum_prev = 'o';
      }
      continue;
    }

    if (saw_eq) continue;
    if (t == "<") {
      if (!ctx.empty() &&
          (is_ident(ctx.back().text) || ctx.back().text == "template")) {
        ++angle_depth;
      }
      continue;
    }
    if (t == ">") {
      if (angle_depth > 0) --angle_depth;
      continue;
    }
    if (angle_depth > 0) continue;
    if (t == "operator") {
      // Sentinel: the header exports something usage cannot be matched
      // to by name (see lint_index.h).
      if (at_ns_scope(scopes)) {
        out.push_back({"operator", Symbol::Kind::kFunction, tok.line, true,
                       enclosing_internal(scopes)});
      }
      ctx.push_back(tok);
      continue;
    }
    if (is_ident(t) || t == "::" || t == ":") {
      ctx.push_back(tok);
    }
  }
  return out;
}

namespace {

/// Resolves one quoted include against the scanned file set: relative to
/// the including file first (the tools/ and in-layer style), then against
/// the project include roots (src/, tests/, tools/, bench/).
std::string resolve_include(const std::set<std::string>& all,
                            const std::string& includer,
                            const std::string& inc) {
  std::vector<std::string> candidates;
  const fs::path dir = fs::path(includer).parent_path();
  candidates.push_back((dir / inc).lexically_normal().generic_string());
  for (const char* base : {"src/", "tests/", "tools/", "bench/"}) {
    candidates.push_back(
        (fs::path(base) / inc).lexically_normal().generic_string());
  }
  candidates.push_back(fs::path(inc).lexically_normal().generic_string());
  for (const std::string& c : candidates) {
    if (all.count(c) != 0) return c;
  }
  return "";
}

const std::set<std::string> kNoAllows;

const std::set<std::string>& allows_on(const ScannedFile& scan, int line) {
  const auto it = scan.allows.find(line);
  return it == scan.allows.end() ? kNoAllows : it->second;
}

}  // namespace

TreeIndex TreeIndex::build([[maybe_unused]] const Config& cfg,
                           const std::map<std::string, std::string>& contents) {
  TreeIndex index;
  std::set<std::string> names;
  for (const auto& [rel, content] : contents) {
    if (is_cmake_file(rel)) continue;
    names.insert(rel);
  }
  for (const auto& [rel, content] : contents) {
    if (is_cmake_file(rel)) continue;
    IndexedFile f;
    f.scan = scan_file(rel, content, /*cmake=*/false);
    f.symbols = extract_symbols(f.scan.code);

    std::set<int> include_lines;
    for (const IncludeDirective& inc : f.scan.includes) {
      include_lines.insert(inc.line);
      f.resolved.push_back(resolve_include(names, rel, inc.path));
    }
    for (std::size_t i = 0; i < f.scan.code.size(); ++i) {
      const int line = static_cast<int>(i) + 1;
      if (include_lines.count(line) != 0) continue;
      std::vector<Tok> toks;
      tokenize_line(f.scan.code[i], line, toks);
      for (const Tok& t : toks) {
        if (!is_ident(t.text)) continue;
        f.idents.insert(t.text);
        f.first_use.emplace(t.text, line);
      }
    }

    if (is_header(rel)) {
      auto& ex = index.exports[rel];
      for (const Symbol& s : f.symbols) {
        ex.insert(s.name);
        const bool def_site = s.name != "operator" &&
                              (s.definition || s.kind == Symbol::Kind::kFunction);
        if (def_site) {
          auto& sites = index.def_sites[s.name];
          if (std::find(sites.begin(), sites.end(), rel) == sites.end()) {
            sites.push_back(rel);
          }
        }
      }
    }
    index.files.emplace(rel, std::move(f));
  }

  // An `IWYU pragma: export` include makes the including header a
  // legitimate provider of the target's names (the umbrella-header
  // contract): absorb the target's exports, to a fixpoint so umbrellas
  // can nest.  Definition sites deliberately stay at the true definer —
  // only `exports` (what a direct include satisfies) widens.
  bool absorbed = true;
  while (absorbed) {
    absorbed = false;
    for (auto& [rel, ex] : index.exports) {
      const IndexedFile& f = index.files.at(rel);
      for (std::size_t i = 0; i < f.scan.includes.size(); ++i) {
        if (!f.scan.includes[i].iwyu_export) continue;
        const std::string& target = f.resolved[i];
        if (target.empty() || target == rel) continue;
        const auto it = index.exports.find(target);
        if (it == index.exports.end()) continue;
        for (const std::string& name : it->second) {
          if (ex.insert(name).second) absorbed = true;
        }
      }
    }
  }
  return index;
}

std::set<std::string> TreeIndex::closure_of(const std::string& rel_path) const {
  std::set<std::string> seen;
  std::vector<std::string> stack;
  const auto push_includes = [&](const std::string& rel) {
    const auto it = files.find(rel);
    if (it == files.end()) return;
    for (const std::string& r : it->second.resolved) {
      if (!r.empty() && seen.insert(r).second) stack.push_back(r);
    }
  };
  push_includes(rel_path);
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    push_includes(cur);
  }
  return seen;
}

std::vector<Finding> TreeIndex::run_rules(const Config& cfg) const {
  std::vector<Finding> out;

  // --- include-cycle ----------------------------------------------------
  {
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> path;     // current DFS chain
    struct Frame {
      std::string file;
      std::size_t next = 0;
    };
    for (const auto& [start, unused_file] : files) {
      if (color[start] != 0) continue;
      std::vector<Frame> stack;
      stack.push_back({start, 0});
      color[start] = 1;
      path.push_back(start);
      while (!stack.empty()) {
        Frame& fr = stack.back();
        const IndexedFile& f = files.at(fr.file);
        if (fr.next >= f.resolved.size()) {
          color[fr.file] = 2;
          path.pop_back();
          stack.pop_back();
          continue;
        }
        const std::size_t i = fr.next++;
        const std::string& target = f.resolved[i];
        if (target.empty()) continue;
        if (color[target] == 1) {
          // Back edge: the chain from `target` around to here is a cycle.
          const IncludeDirective& inc = f.scan.includes[i];
          if (allows_on(f.scan, inc.line).count("include-cycle") != 0) continue;
          std::string chain = target;
          const auto from = std::find(path.begin(), path.end(), target);
          for (auto it = from + 1; it != path.end(); ++it) chain += " -> " + *it;
          chain += " -> " + target;
          out.push_back({fr.file, inc.line, "include-cycle",
                         "include cycle: " + chain, false});
          continue;
        }
        if (color[target] == 0) {
          color[target] = 1;
          path.push_back(target);
          stack.push_back({target, 0});
        }
      }
    }
  }

  // --- include-unused ---------------------------------------------------
  for (const auto& [rel, f] : files) {
    for (std::size_t i = 0; i < f.resolved.size(); ++i) {
      const std::string& target = f.resolved[i];
      const IncludeDirective& inc = f.scan.includes[i];
      if (target.empty() || target == rel) continue;
      if (inc.iwyu_keep || inc.iwyu_export) continue;
      if (allows_on(f.scan, inc.line).count("include-unused") != 0) continue;
      if (associated_stems(stem_of(target), stem_of(rel))) continue;
      const auto ex = exports.find(target);
      // No visible exports (or only operator overloads): cannot judge.
      if (ex == exports.end() || ex->second.empty()) continue;
      bool judgeable = false;
      bool used = false;
      for (const std::string& name : ex->second) {
        if (name == "operator") continue;
        judgeable = true;
        if (f.idents.count(name) != 0) {
          used = true;
          break;
        }
      }
      if (!judgeable || used) continue;
      out.push_back(
          {rel, inc.line, "include-unused",
           "\"" + inc.path + "\" is included but none of its " +
               std::to_string(ex->second.size()) +
               " exported symbols are referenced here; drop the include "
               "(or annotate `// IWYU pragma: keep` if it is re-exported "
               "or needed for side effects)",
           false});
    }
  }

  // --- include-transitive -----------------------------------------------
  for (const auto& [rel, f] : files) {
    std::set<std::string> direct;
    for (const std::string& r : f.resolved) {
      if (!r.empty()) direct.insert(r);
    }
    const std::set<std::string> closure = closure_of(rel);
    std::set<std::string> own;
    for (const Symbol& s : f.symbols) own.insert(s.name);

    // One finding per missing header, anchored at the earliest use.
    std::map<std::string, std::pair<int, std::string>> missing;  // hdr -> (line, sym)
    for (const auto& [name, first_line] : f.first_use) {
      if (own.count(name) != 0) continue;
      const auto ds = def_sites.find(name);
      if (ds == def_sites.end() || ds->second.size() != 1) continue;
      const std::string& hdr = ds->second.front();
      if (hdr == rel || direct.count(hdr) != 0) continue;
      if (closure.count(hdr) == 0) continue;
      if (associated_stems(stem_of(hdr), stem_of(rel))) continue;
      // A direct include that exports the name (e.g. a forward
      // declaration or an umbrella header) satisfies the use.
      bool satisfied = false;
      for (const std::string& d : direct) {
        const auto ex = exports.find(d);
        if (ex != exports.end() && ex->second.count(name) != 0) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (allows_on(f.scan, first_line).count("include-transitive") != 0) {
        continue;
      }
      const auto it = missing.find(hdr);
      if (it == missing.end() || first_line < it->second.first) {
        missing[hdr] = {first_line, name};
      }
    }
    for (const auto& [hdr, use] : missing) {
      out.push_back({rel, use.first, "include-transitive",
                     "uses `" + use.second + "` from \"" + hdr +
                         "\", which only arrives transitively; include it "
                         "directly so refactors of intermediate headers "
                         "cannot break this TU",
                     false});
    }
  }

  // --- dead-public --------------------------------------------------------
  for (const auto& [rel, f] : files) {
    const std::string layer = src_layer_of(rel);
    if (layer.empty() || !is_header(rel)) continue;
    const std::string layer_dir = "src/" + layer + "/";
    for (const Symbol& s : f.symbols) {
      if (s.internal || s.name == "operator") continue;
      const bool candidate =
          (s.kind == Symbol::Kind::kType && s.definition) ||
          s.kind == Symbol::Kind::kFunction || s.kind == Symbol::Kind::kMacro;
      if (!candidate) continue;
      if (cfg.dead_public_allow.count(s.name) != 0) continue;
      if (allows_on(f.scan, s.line).count("dead-public") != 0) continue;
      bool alive = false;
      for (const auto& [other_rel, other] : files) {
        if (other_rel == rel || starts_with(other_rel, layer_dir)) continue;
        if (other.idents.count(s.name) != 0) {
          alive = true;
          break;
        }
      }
      if (alive) continue;
      out.push_back({rel, s.line, "dead-public",
                     "public symbol `" + s.name +
                         "` is referenced by no TU outside " + layer_dir +
                         " and no test; remove it or add it to "
                         "tools/lint_rules/public_api.allow",
                     false});
    }
  }

  return out;
}

std::string TreeIndex::include_report() const {
  struct Row {
    std::string header;
    int fan_in = 0;        // direct includers
    int transitive = 0;    // files whose closure contains it
    int depth = 0;         // height of its own include subtree
  };
  std::map<std::string, Row> rows;
  for (const auto& [rel, f] : files) {
    if (!is_header(rel)) continue;
    rows[rel].header = rel;
  }
  for (const auto& [rel, f] : files) {
    std::set<std::string> direct;
    for (const std::string& r : f.resolved) {
      if (!r.empty()) direct.insert(r);
    }
    for (const std::string& d : direct) {
      const auto it = rows.find(d);
      if (it != rows.end()) ++it->second.fan_in;
    }
    for (const std::string& c : closure_of(rel)) {
      if (c == rel) continue;
      const auto it = rows.find(c);
      if (it != rows.end()) ++it->second.transitive;
    }
  }
  // Depth via memoized DFS; cycles (already reported) are cut at repeat.
  std::map<std::string, int> depth_memo;
  const std::function<int(const std::string&, std::set<std::string>&)> depth =
      [&](const std::string& rel, std::set<std::string>& on_path) -> int {
    const auto memo = depth_memo.find(rel);
    if (memo != depth_memo.end()) return memo->second;
    if (!on_path.insert(rel).second) return 0;
    int best = 0;
    const auto it = files.find(rel);
    if (it != files.end()) {
      for (const std::string& r : it->second.resolved) {
        if (!r.empty()) best = std::max(best, 1 + depth(r, on_path));
      }
    }
    on_path.erase(rel);
    depth_memo[rel] = best;
    return best;
  };
  std::vector<Row> sorted;
  for (auto& [rel, row] : rows) {
    std::set<std::string> on_path;
    row.depth = depth(rel, on_path);
    sorted.push_back(row);
  }
  std::sort(sorted.begin(), sorted.end(), [](const Row& a, const Row& b) {
    return std::tie(b.transitive, b.fan_in, a.header) <
           std::tie(a.transitive, a.fan_in, b.header);
  });

  std::ostringstream os;
  os << "include graph: " << files.size() << " files, " << sorted.size()
     << " headers\n";
  os << std::left << std::setw(44) << "header" << std::right << std::setw(10)
     << "fan-in" << std::setw(14) << "transitive" << std::setw(8) << "depth"
     << "\n";
  for (const Row& r : sorted) {
    os << std::left << std::setw(44) << r.header << std::right << std::setw(10)
       << r.fan_in << std::setw(14) << r.transitive << std::setw(8) << r.depth
       << "\n";
  }
  return os.str();
}

}  // namespace lad::lint
