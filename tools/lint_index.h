// lad_lint pass 2: the whole-tree include graph and the heuristic symbol
// index behind include-cycle / include-unused / include-transitive /
// dead-public, plus the --include-report depth/fan-in table.
//
// The index is token-level by design (same contract as lint_core: no
// compiler front end).  What the heuristics can see: namespace-scope
// classes/structs/unions/enums (definitions and forward declarations),
// enumerators, free function declarations, `using` aliases and typedefs,
// object-like and function-like macros, and `kName = ...` constants.
// What they cannot see: operator overloads (a header exporting only
// operators is exempt from include-unused), template specializations,
// symbols minted by macro expansion, and overload resolution — usage is
// matched by identifier, so any mention of an exported name counts.
// docs/STATIC_ANALYSIS.md documents the consequences.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_core.h"

namespace lad::lint {

/// One namespace-scope symbol extracted from a project file.
struct Symbol {
  enum class Kind { kType, kFunction, kMacro, kAlias, kEnumerator, kConstant };
  std::string name;
  Kind kind = Kind::kType;
  int line = 0;
  // Types: definition (brace body seen) vs forward declaration.  Only
  // definitions and function/macro declarations are dead-public
  // candidates; forward declarations still satisfy include hygiene.
  bool definition = false;
  // Declared inside a detail/internal/anonymous namespace: exported for
  // usage matching but never a dead-public candidate.
  bool internal = false;
};

/// Extracts symbols from stripped code lines (ScannedFile::code order).
/// Exposed for the fixture tests; lint_index_tree drives it internally.
std::vector<Symbol> extract_symbols(const std::vector<std::string>& code);

/// One analyzed file in the tree pass.
struct IndexedFile {
  ScannedFile scan;
  std::vector<Symbol> symbols;        // what this file defines
  std::set<std::string> idents;       // every identifier referenced
  std::map<std::string, int> first_use;  // identifier -> first line
  // Resolved project includes: parallel to scan.includes, "" when the
  // include does not land on a scanned project file.
  std::vector<std::string> resolved;
};

/// The whole-tree analysis: files keyed by root-relative path.
struct TreeIndex {
  std::map<std::string, IndexedFile> files;
  // header -> names it exports (symbols of the header itself).
  std::map<std::string, std::set<std::string>> exports;
  // name -> headers defining it (definition sites only, src/tools
  // headers).
  std::map<std::string, std::vector<std::string>> def_sites;

  /// Builds the index from scanned files (contents already read).
  static TreeIndex build(const Config& cfg,
                         const std::map<std::string, std::string>& contents);

  /// Runs the four tree rules; findings honor the per-line allow map,
  /// IWYU pragmas, and cfg.dead_public_allow / cfg.warn_only.
  std::vector<Finding> run_rules(const Config& cfg) const;

  /// Human-readable depth/fan-in report over project headers.
  std::string include_report() const;

  /// Transitive project-include closure of one file (excluding itself
  /// unless it is part of a cycle).
  std::set<std::string> closure_of(const std::string& rel_path) const;
};

}  // namespace lad::lint
